package ped_test

import (
	"testing"
	"time"

	"hypertap/internal/auditors/ped"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/guest"
	"hypertap/internal/hv"
	"hypertap/internal/malware"
	"hypertap/internal/vmi"
)

func bootVM(t *testing.T, monitored bool) (*hv.Machine, *vmi.Introspector) {
	t.Helper()
	m, err := hv.New(hv.Config{VCPUs: 2, MemBytes: 64 << 20, Guest: guest.Config{Seed: 13}})
	if err != nil {
		t.Fatal(err)
	}
	if monitored {
		if _, err := m.EnableMonitoring(intercept.Features{
			ProcessSwitch: true, ThreadSwitch: true, Syscalls: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	return m, vmi.New(m, m.Kernel().Symbols())
}

func spawnEscalatedUnderShell(t *testing.T, m *hv.Machine, linger time.Duration) *malware.AttackLog {
	t.Helper()
	shell, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "bash", UID: 1000,
		Program: &guest.LoopProgram{Body: []guest.Step{guest.Sleep(time.Second)}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	logRec := &malware.AttackLog{}
	att := &malware.TransientAttack{Log: logRec, Linger: linger}
	if _, err := m.Kernel().CreateProcess(att.Spec("attack"), shell); err != nil {
		t.Fatal(err)
	}
	return logRec
}

func TestPolicyRules(t *testing.T) {
	p := ped.DefaultPolicy()
	tests := []struct {
		name string
		e    guest.ProcEntry
		want bool
	}{
		{"normal user proc", guest.ProcEntry{PID: 10, Comm: "vim", EUID: 1000, ParentUID: 1000}, false},
		{"root proc, root parent", guest.ProcEntry{PID: 11, Comm: "cron", EUID: 0, ParentUID: 0}, false},
		{"escalated under user shell", guest.ProcEntry{PID: 12, Comm: "attack", EUID: 0, ParentUID: 1000}, true},
		{"whitelisted", guest.ProcEntry{PID: 13, Comm: "sshd", EUID: 0, ParentUID: 1000}, false},
		{"setuid-style ninja", guest.ProcEntry{PID: 14, Comm: "ninja", EUID: 0, ParentUID: 1000}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.ViolatesEntry(tt.e); got != tt.want {
				t.Fatalf("ViolatesEntry = %v, want %v", got, tt.want)
			}
			st := guest.ProcStat{PID: tt.e.PID, Comm: tt.e.Comm, EUID: tt.e.EUID, ParentUID: tt.e.ParentUID}
			if got := p.ViolatesStat(st); got != tt.want {
				t.Fatalf("ViolatesStat = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDetectionString(t *testing.T) {
	d := ped.Detection{PID: 5, Comm: "x", By: "ht-ninja", Trigger: "io-syscall"}
	if d.String() == "" {
		t.Fatal("empty detection string")
	}
}

func TestONinjaCatchesPersistentEscalation(t *testing.T) {
	m, _ := bootVM(t, false)
	oninja := &ped.ONinja{Policy: ped.DefaultPolicy(), Interval: 100 * time.Millisecond}
	if _, err := m.Kernel().CreateProcess(oninja.Spec(), nil); err != nil {
		t.Fatal(err)
	}
	logRec := spawnEscalatedUnderShell(t, m, 2*time.Second)
	m.Run(2 * time.Second)
	if !logRec.Escalated() {
		t.Fatal("attack never escalated")
	}
	if !oninja.Detected() {
		t.Fatal("O-Ninja missed a persistent escalation")
	}
	if oninja.Scans() == 0 {
		t.Fatal("no completed scans counted")
	}
	d := oninja.Detections()
	if len(d) == 0 || d[0].Comm != "attack" || d[0].By != "o-ninja" {
		t.Fatalf("detections = %v", d)
	}
}

func TestONinjaKillsWhenAsked(t *testing.T) {
	m, _ := bootVM(t, false)
	oninja := &ped.ONinja{Policy: ped.DefaultPolicy(), Interval: 50 * time.Millisecond, Kill: true}
	if _, err := m.Kernel().CreateProcess(oninja.Spec(), nil); err != nil {
		t.Fatal(err)
	}
	spawnEscalatedUnderShell(t, m, time.Hour)
	m.Run(2 * time.Second)
	if !oninja.Detected() {
		t.Fatal("not detected")
	}
	if tasks := m.Kernel().TasksByComm("attack"); len(tasks) != 0 {
		t.Fatalf("escalated process survived Ninja's kill: %v", tasks)
	}
}

func TestONinjaMissesTransient(t *testing.T) {
	m, _ := bootVM(t, false)
	oninja := &ped.ONinja{Policy: ped.DefaultPolicy(), Interval: time.Second}
	if _, err := m.Kernel().CreateProcess(oninja.Spec(), nil); err != nil {
		t.Fatal(err)
	}
	m.Run(1100 * time.Millisecond) // land the attack inside the sleep window
	logRec := spawnEscalatedUnderShell(t, m, 0)
	m.Run(3 * time.Second)
	if !logRec.Acted() {
		t.Fatal("attack did not act")
	}
	if oninja.Detected() {
		t.Fatal("passive poller detected a transient attack (should miss)")
	}
}

func TestHNinjaValidation(t *testing.T) {
	h := &ped.HNinja{}
	if err := h.Start(); err == nil {
		t.Fatal("Start with empty config succeeded")
	}
	m, intro := bootVM(t, false)
	_ = m
	h = &ped.HNinja{Intro: intro, Clock: m.Clock()}
	if err := h.Start(); err == nil {
		t.Fatal("Start without interval succeeded")
	}
	h = &ped.HNinja{Intro: intro, Clock: m.Clock(), Interval: time.Millisecond}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	if err := h.Start(); err == nil {
		t.Fatal("double Start succeeded")
	}
	h.Stop()
}

func TestHNinjaCatchesPersistentMissesTransient(t *testing.T) {
	m, intro := bootVM(t, false)
	h := &ped.HNinja{Policy: ped.DefaultPolicy(), Intro: intro, Clock: m.Clock(),
		Interval: 10 * time.Millisecond, Blocking: true}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	// Persistent: caught.
	logRec := spawnEscalatedUnderShell(t, m, 500*time.Millisecond)
	m.Run(time.Second)
	if !h.Detected() {
		t.Fatal("H-Ninja missed a persistent escalation")
	}
	if !logRec.Escalated() || h.Scans() == 0 {
		t.Fatal("experiment plumbing broken")
	}

	// Transient against a slow poller: missed.
	m2, intro2 := bootVM(t, false)
	h2 := &ped.HNinja{Policy: ped.DefaultPolicy(), Intro: intro2, Clock: m2.Clock(),
		Interval: 500 * time.Millisecond, Blocking: true}
	if err := h2.Start(); err != nil {
		t.Fatal(err)
	}
	m2.Run(510 * time.Millisecond) // just after a poll
	spawnEscalatedUnderShell(t, m2, 0)
	m2.Run(2 * time.Second)
	if h2.Detected() {
		t.Fatal("slow poller detected a transient attack (should miss)")
	}
}

func TestHTNinjaValidation(t *testing.T) {
	if _, err := ped.NewHTNinja(ped.HTNinjaConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestHTNinjaCatchesTransientBeforeAction(t *testing.T) {
	m, intro := bootVM(t, true)
	var detections []ped.Detection
	htn, err := ped.NewHTNinja(ped.HTNinjaConfig{
		Policy: ped.DefaultPolicy(), View: m, Intro: intro,
		OnDetect: func(d ped.Detection) { detections = append(detections, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EM().Register(htn, core.DeliverSync, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(20 * time.Millisecond)
	logRec := spawnEscalatedUnderShell(t, m, 0)
	m.Run(time.Second)

	if !logRec.Acted() {
		t.Fatal("attack did not act")
	}
	if !htn.Detected() {
		t.Fatal("HT-Ninja missed a transient attack")
	}
	if htn.Name() != "ht-ninja" || htn.Checks() == 0 {
		t.Fatal("identity/stats broken")
	}
	if len(detections) != 1 {
		t.Fatalf("OnDetect fired %d times, want 1 (deduplicated)", len(detections))
	}
	// Active monitoring: the detection happened no later than the first
	// unauthorized I/O completed.
	if detections[0].At > logRec.ActionAt {
		t.Fatalf("detected at %v, after the action completed at %v", detections[0].At, logRec.ActionAt)
	}
}

func TestHTNinjaUnaffectedByRootkit(t *testing.T) {
	m, intro := bootVM(t, true)
	htn, err := ped.NewHTNinja(ped.HTNinjaConfig{Policy: ped.DefaultPolicy(), View: m, Intro: intro})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EM().Register(htn, core.DeliverSync, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(20 * time.Millisecond)

	shell, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "bash", UID: 1000,
		Program: &guest.LoopProgram{Body: []guest.Step{guest.Sleep(time.Second)}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	logRec := &malware.AttackLog{}
	att := &malware.RootkitAttack{
		Log:         logRec,
		Rootkit:     &malware.Rootkit{RkName: "phalanx", Techniques: malware.TechKmem | malware.TechDKOM},
		InstallTime: time.Millisecond,
	}
	if _, err := m.Kernel().CreateProcess(att.Spec("attack"), shell); err != nil {
		t.Fatal(err)
	}
	m.Run(time.Second)
	if !logRec.Hidden() {
		t.Fatal("rootkit never hid the attacker")
	}
	if !htn.Detected() {
		t.Fatal("HT-Ninja blinded by a DKOM rootkit (must not happen)")
	}
}

func TestHTNinjaNoFalsePositives(t *testing.T) {
	m, intro := bootVM(t, true)
	htn, err := ped.NewHTNinja(ped.HTNinjaConfig{Policy: ped.DefaultPolicy(), View: m, Intro: intro})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EM().Register(htn, core.DeliverSync, 0); err != nil {
		t.Fatal(err)
	}
	// Benign activity: user processes doing I/O, root daemons, setuid
	// whitelisted programs.
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "worker", UID: 1000,
		Program: &guest.LoopProgram{Body: []guest.Step{
			guest.DoSyscall(guest.SysOpen, 1),
			guest.DoSyscall(guest.SysWrite, 3, 128),
			guest.DoSyscall(guest.SysClose, 3),
		}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	root := uint32(0)
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "sshd", UID: 1000, EUID: &root, // setuid whitelisted
		Program: &guest.LoopProgram{Body: []guest.Step{
			guest.DoSyscall(guest.SysRead, 0, 64), guest.Sleep(5 * time.Millisecond),
		}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	m.Run(500 * time.Millisecond)
	if htn.Detected() {
		t.Fatalf("false positives: %v", htn.Detections())
	}
}

func TestHNinjaNonBlockingRecheckDetectsPersistent(t *testing.T) {
	// The non-blocking scan spreads per-entry rechecks over time; a
	// persistent escalation is still standing when its recheck arrives.
	m, intro := bootVM(t, false)
	h := &ped.HNinja{Policy: ped.DefaultPolicy(), Intro: intro, Clock: m.Clock(),
		Interval: 20 * time.Millisecond, Blocking: false,
		PerEntryCost: 300 * time.Microsecond}
	if err := h.Start(); err != nil {
		t.Fatal(err)
	}
	logRec := spawnEscalatedUnderShell(t, m, time.Second)
	m.Run(500 * time.Millisecond)
	if !logRec.Escalated() {
		t.Fatal("no escalation")
	}
	if !h.Detected() {
		t.Fatal("non-blocking H-Ninja missed a persistent escalation")
	}
	d := h.Detections()
	if len(d) == 0 || d[0].By != "h-ninja" {
		t.Fatalf("detections = %v", d)
	}
	h.Stop()
	scans := h.Scans()
	m.Run(100 * time.Millisecond)
	if h.Scans() != scans {
		t.Fatal("poller kept scanning after Stop")
	}
}

func TestHTNinjaDetectionsAccessor(t *testing.T) {
	m, intro := bootVM(t, true)
	htn, err := ped.NewHTNinja(ped.HTNinjaConfig{Policy: ped.DefaultPolicy(), View: m, Intro: intro})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EM().Register(htn, core.DeliverSync, 0); err != nil {
		t.Fatal(err)
	}
	m.Run(20 * time.Millisecond)
	spawnEscalatedUnderShell(t, m, 100*time.Millisecond)
	m.Run(500 * time.Millisecond)
	d := htn.Detections()
	if len(d) != 1 || d[0].Comm != "attack" {
		t.Fatalf("detections = %v", d)
	}
}
