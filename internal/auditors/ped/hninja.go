package ped

import (
	"fmt"
	"sync"
	"time"

	"hypertap/internal/guest"
	"hypertap/internal/vclock"
	"hypertap/internal/vmi"
)

// HNinja is Ninja's policy moved to the hypervisor using traditional VMI:
// it polls the guest's task list (decoded from guest memory) on a fixed
// interval. Compared to O-Ninja it leaves no /proc footprint inside the
// guest — the side channel of Table III fails against it — and in blocking
// mode its scan is atomic, deflecting spamming. It remains *passive* and
// built on *OS invariants*, so transient attacks (between polls) and DKOM
// rootkits (unlinking the task list) still defeat it: exactly the gap
// HT-Ninja closes.
type HNinja struct {
	// Policy is the shared rule set.
	Policy Policy
	// Intro provides the VMI view of the guest.
	Intro *vmi.Introspector
	// Clock schedules the polls in virtual time.
	Clock *vclock.Clock
	// Interval is the polling period.
	Interval time.Duration
	// Blocking scans atomically (the VM is effectively paused during the
	// walk). Non-blocking scans spread per-entry checks over PerEntryCost
	// each, re-reading every entry at its check time — which is what a
	// spamming attacker exploits.
	Blocking bool
	// PerEntryCost is the non-blocking per-entry check latency.
	// Default 150µs.
	PerEntryCost time.Duration

	mu         sync.Mutex
	detections []Detection
	scans      uint64
	started    bool
	stopped    bool
	timer      *vclock.Timer
}

// Start begins polling. It returns an error if the configuration is
// incomplete or polling already started.
func (h *HNinja) Start() error {
	if h.Intro == nil || h.Clock == nil {
		return fmt.Errorf("ped: HNinja requires Intro and Clock")
	}
	if h.Interval <= 0 {
		return fmt.Errorf("ped: HNinja.Interval must be positive, got %v", h.Interval)
	}
	if h.PerEntryCost == 0 {
		h.PerEntryCost = 150 * time.Microsecond
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.started {
		return fmt.Errorf("ped: HNinja already started")
	}
	h.started = true
	h.timer = h.Clock.AfterFunc(h.Interval, h.poll)
	return nil
}

// Stop halts polling.
func (h *HNinja) Stop() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stopped = true
	if h.timer != nil {
		h.Clock.Stop(h.timer)
	}
}

// poll runs one scan and re-arms.
func (h *HNinja) poll(now time.Duration) {
	h.mu.Lock()
	if h.stopped {
		h.mu.Unlock()
		return
	}
	h.scans++
	h.timer = h.Clock.AfterFunc(h.Interval, h.poll)
	h.mu.Unlock()

	entries, err := h.Intro.ListProcesses()
	if err != nil {
		return
	}
	if h.Blocking {
		for _, e := range entries {
			h.check(e, now)
		}
		return
	}
	// Non-blocking: each entry is re-examined at its scan position. A
	// process that exits (or hides) before the scan reaches it escapes.
	for i, e := range entries {
		pid := e.PID
		delay := time.Duration(i+1) * h.PerEntryCost
		h.Clock.AfterFunc(delay, func(at time.Duration) {
			h.recheck(pid, at)
		})
	}
}

// check applies the policy to an atomic-scan entry.
func (h *HNinja) check(e guest.ProcEntry, now time.Duration) {
	if h.Policy.ViolatesEntry(e) {
		h.record(Detection{PID: e.PID, Comm: e.Comm, At: now, By: "h-ninja", Trigger: "scan"})
	}
}

// recheck re-reads one pid at its scheduled scan position (non-blocking
// mode); missing or relinked entries escape, as on real hardware.
func (h *HNinja) recheck(pid int, now time.Duration) {
	h.mu.Lock()
	stopped := h.stopped
	h.mu.Unlock()
	if stopped {
		return
	}
	entries, err := h.Intro.ListProcesses()
	if err != nil {
		return
	}
	for _, e := range entries {
		if e.PID != pid {
			continue
		}
		if e.State == guest.StateZombie {
			return
		}
		h.check(e, now)
		return
	}
}

func (h *HNinja) record(d Detection) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.detections = append(h.detections, d)
}

// Detections snapshots flagged processes.
func (h *HNinja) Detections() []Detection {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Detection, len(h.detections))
	copy(out, h.detections)
	return out
}

// Detected reports whether any violation was flagged.
func (h *HNinja) Detected() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.detections) > 0
}

// Scans returns completed poll count.
func (h *HNinja) Scans() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.scans
}
