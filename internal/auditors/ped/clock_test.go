package ped

import (
	"testing"
	"time"

	"hypertap/internal/core"
	"hypertap/internal/telemetry"
)

// TestDeterministicLatencyClock swaps the package wall clock for a stepping
// fake and checks the decision-latency telemetry becomes exactly
// reproducible — the reason wallNow is a variable rather than time.Now.
func TestDeterministicLatencyClock(t *testing.T) {
	var calls int
	wallNow = func() time.Time {
		calls++
		return time.Unix(0, int64(calls)*int64(time.Millisecond))
	}
	defer func() { wallNow = time.Now }()

	n := &HTNinja{}
	reg := telemetry.NewRegistry()
	n.EnableTelemetry(reg)

	// CR3 of 0 makes the policy evaluation a pure no-op, so the only
	// latency contribution is the two fake clock reads, 1ms apart.
	n.checkRSP0(&core.Event{}, 0, "test")

	hs := reg.Histogram("hypertap_ped_decision_seconds").Snapshot()
	if hs.Count != 1 {
		t.Fatalf("latency observations = %d, want 1", hs.Count)
	}
	if hs.Max != time.Millisecond {
		t.Fatalf("latency = %v, want exactly 1ms from the fake clock", hs.Max)
	}
	if got := reg.Counter("hypertap_ped_policy_decisions_total").Value(); got != 1 {
		t.Fatalf("decisions = %d, want 1", got)
	}
}
