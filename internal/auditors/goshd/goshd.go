// Package goshd implements Guest OS Hang Detection, the paper's reliability
// auditor (§VII-A).
//
// GOSHD consumes the context-switch events of HyperTap's shared logging
// channel (thread switches from TSS write-protection, process switches from
// CR3 loads) and declares a vCPU hung when no switch occurs for a threshold
// period. Because each vCPU is watched independently, GOSHD distinguishes
// *partial* hangs (a proper subset of vCPUs hung — the failure mode the
// paper newly characterizes) from *full* hangs.
//
// The threshold follows the paper's calibration rule: profile the guest's
// maximum scheduling gap and double it (§VII-A2). A Profiler auditor is
// provided for that step.
package goshd

import (
	"fmt"
	"sync"
	"time"

	"hypertap/internal/core"
	"hypertap/internal/telemetry"
	"hypertap/internal/vclock"
)

// wallNow supplies wall-clock time for telemetry latency sampling — the one
// legitimately real-time read in this package, measuring the true cost of a
// watchdog scan. It is a package variable so tests can substitute a
// deterministic clock.
var wallNow = time.Now //hypertap:allow wallclock latency sampling measures real scan cost; swappable in tests

// HangAlarm reports one vCPU hang detection.
type HangAlarm struct {
	// VCPU is the hung virtual CPU.
	VCPU int
	// At is the virtual time the alarm fired.
	At time.Duration
	// LastSwitch is the virtual time of the last observed context switch.
	LastSwitch time.Duration
	// Span is the causal span of the last observed switch — the verdict's
	// anchor in the flight recorder (zero when no switch was ever seen).
	Span core.SpanID
}

func (a HangAlarm) String() string {
	return fmt.Sprintf("goshd: vcpu%d hung at %v (last switch %v)", a.VCPU, a.At, a.LastSwitch)
}

// Config describes a detector.
type Config struct {
	// VM scopes the detector to one VM on a host-shared Event Multiplexer:
	// registered via RegisterAuditor, it receives only that VM's context
	// switches. Zero (VM 0) is correct for solo machines.
	VM core.VMID
	// Clock is the virtual clock used to arm silence timers.
	Clock *vclock.Clock
	// VCPUs is the number of vCPUs to watch.
	VCPUs int
	// Threshold is the per-vCPU silence that triggers an alarm. The paper
	// uses 2× the profiled maximum scheduling timeslice (4 s for its SUSE
	// guest).
	Threshold time.Duration
	// OnHang, when set, is invoked synchronously for each alarm.
	OnHang func(HangAlarm)
}

// Detector is the GOSHD auditor.
type Detector struct {
	cfg Config

	mu         sync.Mutex
	lastSwitch []time.Duration
	lastSpan   []core.SpanID
	timers     []*vclock.Timer
	alarms     []HangAlarm
	hung       []bool
	started    bool
	tel        *detTelemetry
}

// detTelemetry is GOSHD's instrument set.
type detTelemetry struct {
	scans   *telemetry.Counter
	alarmsC *telemetry.Counter
	latency *telemetry.Histogram
}

// EnableTelemetry registers GOSHD's instruments on reg:
// hypertap_goshd_timeout_scans_total counts watchdog timeout evaluations,
// hypertap_goshd_scan_seconds records their latency, and
// hypertap_goshd_alarms_total counts raised hang alarms.
func (d *Detector) EnableTelemetry(reg *telemetry.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tel = &detTelemetry{
		scans:   reg.Counter("hypertap_goshd_timeout_scans_total"),
		alarmsC: reg.Counter("hypertap_goshd_alarms_total"),
		latency: reg.Histogram("hypertap_goshd_scan_seconds"),
	}
}

// New builds a detector. Start must be called to arm the watchdogs.
func New(cfg Config) (*Detector, error) {
	if cfg.Clock == nil {
		return nil, fmt.Errorf("goshd: Config.Clock is required")
	}
	if cfg.VCPUs <= 0 {
		return nil, fmt.Errorf("goshd: Config.VCPUs must be positive, got %d", cfg.VCPUs)
	}
	if cfg.Threshold <= 0 {
		return nil, fmt.Errorf("goshd: Config.Threshold must be positive, got %v", cfg.Threshold)
	}
	return &Detector{
		cfg:        cfg,
		lastSwitch: make([]time.Duration, cfg.VCPUs),
		lastSpan:   make([]core.SpanID, cfg.VCPUs),
		timers:     make([]*vclock.Timer, cfg.VCPUs),
		hung:       make([]bool, cfg.VCPUs),
	}, nil
}

var _ core.Auditor = (*Detector)(nil)
var _ core.VMScoped = (*Detector)(nil)

// Name implements core.Auditor.
func (d *Detector) Name() string { return "goshd" }

// VMScope implements core.VMScoped: a detector watches exactly one VM's
// scheduling, so on a shared EM it subscribes to its VM's events only.
func (d *Detector) VMScope() core.VMScope { return core.ScopeVM(d.cfg.VM) }

// Mask implements core.Auditor: GOSHD needs only context-switch events —
// the same events HRKD uses, demonstrating the shared logging channel.
func (d *Detector) Mask() core.EventMask {
	return core.MaskOf(core.EvThreadSwitch, core.EvProcessSwitch)
}

// Start arms the per-vCPU watchdogs at the current virtual time.
func (d *Detector) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.started {
		return
	}
	d.started = true
	now := d.cfg.Clock.Now()
	for i := range d.timers {
		d.lastSwitch[i] = now
		d.armLocked(i)
	}
}

// armLocked (re)arms vCPU i's silence timer. Caller holds d.mu.
func (d *Detector) armLocked(vcpu int) {
	if d.timers[vcpu] != nil {
		d.cfg.Clock.Stop(d.timers[vcpu])
	}
	d.timers[vcpu] = d.cfg.Clock.AfterFunc(d.cfg.Threshold, func(now time.Duration) {
		d.onSilence(vcpu, now)
	})
}

// HandleEvent implements core.Auditor: every context switch feeds the
// watchdog of its vCPU.
func (d *Detector) HandleEvent(ev *core.Event) {
	if ev.VCPU < 0 || ev.VCPU >= len(d.lastSwitch) {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.lastSwitch[ev.VCPU] = ev.Time
	d.lastSpan[ev.VCPU] = ev.Span
	if d.hung[ev.VCPU] {
		// A hung vCPU resumed (e.g., lock released): clear the condition.
		d.hung[ev.VCPU] = false
	}
	if d.started {
		d.armLocked(ev.VCPU)
	}
}

// onSilence fires when a vCPU has been switch-silent for the threshold.
func (d *Detector) onSilence(vcpu int, now time.Duration) {
	start := wallNow()
	d.mu.Lock()
	tel := d.tel
	if d.hung[vcpu] {
		d.mu.Unlock()
		if tel != nil {
			tel.scans.Inc()
			tel.latency.Observe(wallNow().Sub(start))
		}
		return
	}
	d.hung[vcpu] = true
	alarm := HangAlarm{VCPU: vcpu, At: now, LastSwitch: d.lastSwitch[vcpu], Span: d.lastSpan[vcpu]}
	d.alarms = append(d.alarms, alarm)
	onHang := d.cfg.OnHang
	// Keep watching: if the vCPU resumes, HandleEvent clears hung and
	// re-arms; otherwise this timer chain ends here.
	d.mu.Unlock()
	if tel != nil {
		tel.scans.Inc()
		tel.alarmsC.Inc()
		tel.latency.Observe(wallNow().Sub(start))
	}
	if onHang != nil {
		onHang(alarm)
	}
}

// Alarms returns all alarms raised so far.
func (d *Detector) Alarms() []HangAlarm {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]HangAlarm, len(d.alarms))
	copy(out, d.alarms)
	return out
}

// HungVCPUs returns the currently hung vCPU set.
func (d *Detector) HungVCPUs() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []int
	for i, h := range d.hung {
		if h {
			out = append(out, i)
		}
	}
	return out
}

// PartialHang reports whether a proper, non-empty subset of vCPUs is hung.
func (d *Detector) PartialHang() bool {
	n := len(d.HungVCPUs())
	return n > 0 && n < d.cfg.VCPUs
}

// FullHang reports whether every vCPU is hung.
func (d *Detector) FullHang() bool {
	return len(d.HungVCPUs()) == d.cfg.VCPUs
}

// FirstAlarm returns the earliest alarm, if any.
func (d *Detector) FirstAlarm() (HangAlarm, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.alarms) == 0 {
		return HangAlarm{}, false
	}
	return d.alarms[0], true
}

// Profiler measures the maximum inter-switch gap per vCPU: the calibration
// run that sets the GOSHD threshold ("we profiled the guest OS to determine
// the maximum scheduling time slice, and set the threshold to be twice the
// profiled time").
type Profiler struct {
	mu   sync.Mutex
	last []time.Duration
	gap  []time.Duration
	seen []bool
}

// NewProfiler builds a profiler for a vCPU count.
func NewProfiler(vcpus int) *Profiler {
	return &Profiler{
		last: make([]time.Duration, vcpus),
		gap:  make([]time.Duration, vcpus),
		seen: make([]bool, vcpus),
	}
}

var _ core.Auditor = (*Profiler)(nil)

// Name implements core.Auditor.
func (p *Profiler) Name() string { return "goshd-profiler" }

// Mask implements core.Auditor.
func (p *Profiler) Mask() core.EventMask {
	return core.MaskOf(core.EvThreadSwitch, core.EvProcessSwitch)
}

// HandleEvent implements core.Auditor.
func (p *Profiler) HandleEvent(ev *core.Event) {
	if ev.VCPU < 0 || ev.VCPU >= len(p.last) {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.seen[ev.VCPU] {
		if gap := ev.Time - p.last[ev.VCPU]; gap > p.gap[ev.VCPU] {
			p.gap[ev.VCPU] = gap
		}
	}
	p.seen[ev.VCPU] = true
	p.last[ev.VCPU] = ev.Time
}

// MaxGap returns the largest observed inter-switch gap across vCPUs.
func (p *Profiler) MaxGap() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var maxGap time.Duration
	for _, g := range p.gap {
		if g > maxGap {
			maxGap = g
		}
	}
	return maxGap
}

// RecommendedThreshold applies the paper's rule: twice the profiled maximum.
func (p *Profiler) RecommendedThreshold() time.Duration {
	return 2 * p.MaxGap()
}
