package goshd

import (
	"testing"
	"time"

	"hypertap/internal/telemetry"
	"hypertap/internal/vclock"
)

// TestDeterministicLatencyClock swaps the package wall clock for a stepping
// fake and checks the scan-latency telemetry becomes exactly reproducible —
// the reason wallNow is a variable rather than a direct time.Now call.
func TestDeterministicLatencyClock(t *testing.T) {
	var calls int
	wallNow = func() time.Time {
		calls++
		return time.Unix(0, int64(calls)*int64(time.Millisecond))
	}
	defer func() { wallNow = time.Now }()

	clock := &vclock.Clock{}
	d := newDetector(t, clock, 1, time.Second)
	reg := telemetry.NewRegistry()
	d.EnableTelemetry(reg)
	d.Start()

	// Let the watchdog fire once: one scan, two clock reads, 1ms apart.
	clock.Advance(2 * time.Second)
	if len(d.Alarms()) != 1 {
		t.Fatalf("alarms = %d, want 1", len(d.Alarms()))
	}
	hs := reg.Histogram("hypertap_goshd_scan_seconds").Snapshot()
	if hs.Count != 1 {
		t.Fatalf("latency observations = %d, want 1", hs.Count)
	}
	if hs.Max != time.Millisecond {
		t.Fatalf("latency = %v, want exactly 1ms from the fake clock", hs.Max)
	}
}
