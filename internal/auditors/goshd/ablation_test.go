package goshd_test

import (
	"testing"
	"time"

	"hypertap/internal/auditors/goshd"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/experiment"
	"hypertap/internal/guest"
	"hypertap/internal/hv"
	"hypertap/internal/inject"
)

// aggregateWatchdog is the ablation of GOSHD's per-vCPU independence: one
// watchdog reset by a context switch on ANY vCPU — the behaviour of naive
// whole-VM liveness checks (and of heartbeat probes, §VII-A1).
type aggregateWatchdog struct {
	clock interface {
		Now() time.Duration
	}
	last    time.Duration
	alarmAt time.Duration
}

func (w *aggregateWatchdog) Name() string { return "aggregate-watchdog" }
func (w *aggregateWatchdog) Mask() core.EventMask {
	return core.MaskOf(core.EvThreadSwitch, core.EvProcessSwitch)
}
func (w *aggregateWatchdog) HandleEvent(ev *core.Event) { w.last = ev.Time }

// TestAblationPerVCPUWatchingDetectsPartialHangs pins the paper's central
// GOSHD design choice: with a partial hang (one vCPU dead, the other alive),
// the per-vCPU detector alarms while the aggregate watchdog — like an
// external heartbeat — keeps seeing liveness and stays silent.
func TestAblationPerVCPUWatchingDetectsPartialHangs(t *testing.T) {
	m, err := hv.New(hv.Config{VCPUs: 2, MemBytes: 64 << 20, Guest: guest.Config{Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EnableMonitoring(intercept.Features{ProcessSwitch: true, ThreadSwitch: true}); err != nil {
		t.Fatal(err)
	}
	perVCPU, err := goshd.New(goshd.Config{Clock: m.Clock(), VCPUs: 2, Threshold: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EM().Register(perVCPU, core.DeliverAsync, 0); err != nil {
		t.Fatal(err)
	}
	agg := &aggregateWatchdog{clock: m.Clock()}
	if err := m.EM().Register(agg, core.DeliverAsync, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	perVCPU.Start()

	// A CPU-bound task pinned to vCPU 0 whose kernel path we poison: its
	// missing-release fault self-deadlocks vCPU 0 only (no one on vCPU 1
	// touches the tty lock except the kworkers, which also log — pick the
	// PID-table lock instead, touched by nobody else here).
	var site guest.SiteID
	for _, s := range m.Kernel().Sites() {
		if s.Kind == guest.FaultMissingRelease && s.Path == guest.SysKill {
			site = s.ID
			break
		}
	}
	plan, err := inject.NewPlan(inject.Fault{Site: site, Persistence: inject.Persistent}, m.Clock().Now)
	if err != nil {
		t.Fatal(err)
	}
	m.Kernel().SetFaultPlan(plan)
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "kill-loop", UID: 0, Pinned: true, CPUAffinity: 0,
		Program: &guest.LoopProgram{Body: []guest.Step{
			guest.DoSyscall(guest.SysKill, 99999), // ESRCH, but walks the poisoned path
			guest.Compute(time.Millisecond),
		}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	// Keep vCPU 1 visibly alive.
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "alive", UID: 1, Pinned: true, CPUAffinity: 1,
		Program: &guest.LoopProgram{Body: []guest.Step{
			guest.Compute(time.Millisecond), guest.Sleep(time.Millisecond),
		}},
	}, nil); err != nil {
		t.Fatal(err)
	}

	m.RunUntil(30*time.Second, func() bool { return len(perVCPU.Alarms()) > 0 })
	m.Run(2 * time.Second)

	if !perVCPU.PartialHang() {
		t.Fatalf("per-vCPU detector saw no partial hang (alarms=%v)", perVCPU.Alarms())
	}
	// The ablated watchdog saw a switch recently: it would not alarm.
	gap := m.Clock().Now() - agg.last
	if gap >= 4*time.Second {
		t.Fatalf("aggregate watchdog also starved (gap %v); the ablation comparison is void", gap)
	}
	t.Logf("per-vCPU: partial hang on vcpus %v; aggregate watchdog last fed %v ago (would stay silent)",
		perVCPU.HungVCPUs(), gap.Round(time.Millisecond))
}

// TestAblationMatchesCampaignClassifier cross-checks the ablation against
// the experiment-level classifier on the same fault: the campaign must call
// it a partial hang.
func TestAblationMatchesCampaignClassifier(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second injection run")
	}
	m, err := hv.New(hv.Config{VCPUs: 1, MemBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	var site guest.SiteID
	for _, s := range m.Kernel().Sites() {
		if s.Kind == guest.FaultMissingRelease && s.Path == guest.SysRead {
			site = s.ID
			break
		}
	}
	rr, err := experiment.RunInjection(experiment.InjectionConfig{
		Workload:  "make -j1",
		Fault:     inject.Fault{Site: site, Persistence: inject.Persistent},
		Threshold: 4 * time.Second,
		Exposure:  15 * time.Second,
		Runway:    12 * time.Second,
		Observe:   20 * time.Second,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rr.Outcome != inject.PartialHang && rr.Outcome != inject.FullHang {
		t.Fatalf("classifier outcome = %v, want a detected hang", rr.Outcome)
	}
	if lat, ok := rr.DetectionLatency(); !ok || lat < 4*time.Second {
		t.Fatalf("detection latency = %v,%v (must be at least the threshold)", lat, ok)
	}
}
