package goshd

import (
	"testing"
	"time"

	"hypertap/internal/core"
	"hypertap/internal/vclock"
)

func newDetector(t *testing.T, clock *vclock.Clock, vcpus int, threshold time.Duration) *Detector {
	t.Helper()
	d, err := New(Config{Clock: clock, VCPUs: vcpus, Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func switchEvent(vcpu int, at time.Duration) *core.Event {
	return &core.Event{Type: core.EvThreadSwitch, VCPU: vcpu, Time: at}
}

func TestNewValidation(t *testing.T) {
	clock := &vclock.Clock{}
	cases := []Config{
		{VCPUs: 2, Threshold: time.Second},                // no clock
		{Clock: clock, Threshold: time.Second},            // no vcpus
		{Clock: clock, VCPUs: 2},                          // no threshold
		{Clock: clock, VCPUs: -1, Threshold: time.Second}, // bad vcpus
		{Clock: clock, VCPUs: 2, Threshold: -time.Second}, // bad threshold
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestNameAndMask(t *testing.T) {
	clock := &vclock.Clock{}
	d := newDetector(t, clock, 2, time.Second)
	if d.Name() != "goshd" {
		t.Errorf("Name = %q", d.Name())
	}
	if !d.Mask().Has(core.EvThreadSwitch) || !d.Mask().Has(core.EvProcessSwitch) {
		t.Error("mask missing context-switch events")
	}
	if d.Mask().Has(core.EvSyscall) {
		t.Error("mask includes syscalls")
	}
}

func TestNoAlarmWhileSwitching(t *testing.T) {
	clock := &vclock.Clock{}
	d := newDetector(t, clock, 1, 4*time.Second)
	d.Start()
	for i := 0; i < 20; i++ {
		clock.Advance(time.Second)
		d.HandleEvent(switchEvent(0, clock.Now()))
	}
	if len(d.Alarms()) != 0 {
		t.Fatalf("alarms = %v on a live vCPU", d.Alarms())
	}
}

func TestAlarmOnSilence(t *testing.T) {
	clock := &vclock.Clock{}
	var hangs []HangAlarm
	d, err := New(Config{Clock: clock, VCPUs: 2, Threshold: 4 * time.Second,
		OnHang: func(a HangAlarm) { hangs = append(hangs, a) }})
	if err != nil {
		t.Fatal(err)
	}
	d.Start()

	// vCPU 1 keeps switching, vCPU 0 goes silent at t=2s.
	clock.Advance(2 * time.Second)
	d.HandleEvent(switchEvent(0, clock.Now()))
	for i := 0; i < 10; i++ {
		clock.Advance(time.Second)
		d.HandleEvent(switchEvent(1, clock.Now()))
	}

	alarms := d.Alarms()
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1", len(alarms))
	}
	if alarms[0].VCPU != 0 {
		t.Errorf("alarm vcpu = %d, want 0", alarms[0].VCPU)
	}
	if alarms[0].At != 6*time.Second {
		t.Errorf("alarm at %v, want 6s (last switch 2s + threshold 4s)", alarms[0].At)
	}
	if alarms[0].LastSwitch != 2*time.Second {
		t.Errorf("last switch = %v, want 2s", alarms[0].LastSwitch)
	}
	if len(hangs) != 1 {
		t.Errorf("OnHang called %d times, want 1", len(hangs))
	}
	if !d.PartialHang() || d.FullHang() {
		t.Error("one of two hung vCPUs must be a partial hang")
	}
}

func TestFullHang(t *testing.T) {
	clock := &vclock.Clock{}
	d := newDetector(t, clock, 2, time.Second)
	d.Start()
	clock.Advance(5 * time.Second)
	if !d.FullHang() {
		t.Fatal("both silent vCPUs should be a full hang")
	}
	if d.PartialHang() {
		t.Fatal("full hang misreported as partial")
	}
	if got := len(d.HungVCPUs()); got != 2 {
		t.Fatalf("hung vCPUs = %d, want 2", got)
	}
	first, ok := d.FirstAlarm()
	if !ok || first.At != time.Second {
		t.Fatalf("first alarm = %+v, %v", first, ok)
	}
}

func TestRecoveryClearsHang(t *testing.T) {
	clock := &vclock.Clock{}
	d := newDetector(t, clock, 1, time.Second)
	d.Start()
	clock.Advance(2 * time.Second) // hang
	if len(d.HungVCPUs()) != 1 {
		t.Fatal("no hang detected")
	}
	// The vCPU resumes (lock released): condition clears and watching
	// resumes.
	d.HandleEvent(switchEvent(0, clock.Now()))
	if len(d.HungVCPUs()) != 0 {
		t.Fatal("hang not cleared after resume")
	}
	clock.Advance(2 * time.Second)
	if got := len(d.Alarms()); got != 2 {
		t.Fatalf("alarms after re-hang = %d, want 2", got)
	}
}

func TestStartIdempotent(t *testing.T) {
	clock := &vclock.Clock{}
	d := newDetector(t, clock, 1, time.Second)
	d.Start()
	d.Start()
	clock.Advance(3 * time.Second)
	if got := len(d.Alarms()); got != 1 {
		t.Fatalf("alarms = %d after double Start, want 1", got)
	}
}

func TestEventsBeforeStartDoNotArm(t *testing.T) {
	clock := &vclock.Clock{}
	d := newDetector(t, clock, 1, time.Second)
	d.HandleEvent(switchEvent(0, 0))
	clock.Advance(5 * time.Second)
	if len(d.Alarms()) != 0 {
		t.Fatal("alarm fired before Start")
	}
}

func TestOutOfRangeVCPUIgnored(t *testing.T) {
	clock := &vclock.Clock{}
	d := newDetector(t, clock, 1, time.Second)
	d.Start()
	d.HandleEvent(switchEvent(7, 0)) // must not panic
	d.HandleEvent(switchEvent(-1, 0))
}

func TestAlarmString(t *testing.T) {
	a := HangAlarm{VCPU: 1, At: 6 * time.Second, LastSwitch: 2 * time.Second}
	if a.String() == "" {
		t.Fatal("empty alarm string")
	}
}

func TestProfiler(t *testing.T) {
	p := NewProfiler(2)
	if p.Name() == "" || !p.Mask().Has(core.EvThreadSwitch) {
		t.Fatal("profiler identity broken")
	}
	times := []time.Duration{0, 100 * time.Millisecond, 1900 * time.Millisecond, 2 * time.Second}
	for _, at := range times {
		p.HandleEvent(switchEvent(0, at))
	}
	p.HandleEvent(switchEvent(1, 0))
	p.HandleEvent(switchEvent(1, 500*time.Millisecond))
	p.HandleEvent(switchEvent(7, 0)) // ignored

	if got := p.MaxGap(); got != 1800*time.Millisecond {
		t.Fatalf("MaxGap = %v, want 1.8s", got)
	}
	if got := p.RecommendedThreshold(); got != 3600*time.Millisecond {
		t.Fatalf("RecommendedThreshold = %v, want 3.6s (2x max)", got)
	}
}
