// Package syscallpolicy implements the class of security tools the paper's
// §VII-D says HyperTap can host: system-call interposition (Garfinkel's
// traps-and-pitfalls lineage, Provos' Systrace-style policies) and
// intrusion detection via system-call traces (Kosoresow & Hofmeyr).
//
// Two auditors are provided on the shared logging channel:
//
//   - Enforcer: per-program system-call allow-lists, evaluated synchronously
//     at the gate, before the call executes (the interposition model).
//   - TraceAnomaly: per-program n-gram models of system-call sequences,
//     trained on normal behaviour and alarming on unseen sequences (the
//     host-based IDS model).
//
// Both derive the calling process purely from architectural state via the
// TR → TSS.RSP0 → thread_info → task_struct chain, so a compromised guest
// cannot lie about who is making the call.
package syscallpolicy

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hypertap/internal/arch"
	"hypertap/internal/core"
	"hypertap/internal/guest"
	"hypertap/internal/vmi"
)

// Violation is one policy breach.
type Violation struct {
	PID     int
	Comm    string
	Syscall guest.Syscall
	At      time.Duration
	// Reason distinguishes allow-list breaches from sequence anomalies.
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("syscallpolicy: pid=%d comm=%q %v at %v (%s)",
		v.PID, v.Comm, v.Syscall, v.At, v.Reason)
}

// Ruleset maps program names to their permitted system calls. Programs
// without an entry are unconstrained (policies are opt-in per program, as
// in Systrace).
type Ruleset map[string]map[guest.Syscall]bool

// Allow builds a rule entry.
func Allow(calls ...guest.Syscall) map[guest.Syscall]bool {
	m := make(map[guest.Syscall]bool, len(calls))
	for _, c := range calls {
		m[c] = true
	}
	return m
}

// Enforcer is the interposition auditor: registered synchronously, its
// verdicts land before the audited call's effects.
type Enforcer struct {
	view  core.GuestView
	intro *vmi.Introspector
	rules Ruleset
	// onViolation runs synchronously per violation (kill, pause, log).
	onViolation func(Violation)

	mu         sync.Mutex
	violations []Violation
	checked    uint64
}

// EnforcerConfig assembles an Enforcer.
type EnforcerConfig struct {
	View        core.GuestView
	Intro       *vmi.Introspector
	Rules       Ruleset
	OnViolation func(Violation)
}

// NewEnforcer builds the auditor.
func NewEnforcer(cfg EnforcerConfig) (*Enforcer, error) {
	if cfg.View == nil || cfg.Intro == nil {
		return nil, fmt.Errorf("syscallpolicy: EnforcerConfig requires View and Intro")
	}
	if len(cfg.Rules) == 0 {
		return nil, fmt.Errorf("syscallpolicy: empty ruleset")
	}
	return &Enforcer{
		view:        cfg.View,
		intro:       cfg.Intro,
		rules:       cfg.Rules,
		onViolation: cfg.OnViolation,
	}, nil
}

var _ core.Auditor = (*Enforcer)(nil)

// Name implements core.Auditor.
func (e *Enforcer) Name() string { return "syscall-enforcer" }

// Mask implements core.Auditor.
func (e *Enforcer) Mask() core.EventMask { return core.MaskOf(core.EvSyscall) }

// HandleEvent implements core.Auditor.
func (e *Enforcer) HandleEvent(ev *core.Event) {
	entry, ok := deriveCaller(e.view, e.intro, ev)
	if !ok {
		return
	}
	allowed, constrained := e.rules[entry.Comm]
	e.mu.Lock()
	e.checked++
	e.mu.Unlock()
	if !constrained {
		return
	}
	nr := guest.Syscall(ev.SyscallNr)
	if allowed[nr] {
		return
	}
	v := Violation{PID: entry.PID, Comm: entry.Comm, Syscall: nr, At: ev.Time, Reason: "not in allow-list"}
	e.mu.Lock()
	e.violations = append(e.violations, v)
	cb := e.onViolation
	e.mu.Unlock()
	if cb != nil {
		cb(v)
	}
}

// Violations snapshots the breaches.
func (e *Enforcer) Violations() []Violation {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Violation, len(e.violations))
	copy(out, e.violations)
	return out
}

// Checked returns how many calls were evaluated.
func (e *Enforcer) Checked() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.checked
}

// deriveCaller resolves the process behind a syscall event from hardware
// state only.
func deriveCaller(view core.GuestView, intro *vmi.Introspector, ev *core.Event) (guest.ProcEntry, bool) {
	cr3 := ev.Regs.CR3
	if cr3 == 0 || ev.Regs.TR == 0 {
		return guest.ProcEntry{}, false
	}
	rsp0, err := view.ReadU64GVA(cr3, ev.Regs.TR+arch.TSSOffRSP0)
	if err != nil {
		return guest.ProcEntry{}, false
	}
	entry, err := intro.DeriveTaskFromRSP0(cr3, arch.GVA(rsp0))
	if err != nil {
		return guest.ProcEntry{}, false
	}
	return entry, true
}

// TraceAnomaly is the syscall-sequence IDS: it models each program's normal
// behaviour as the set of n-grams of its system-call trace (per process,
// per comm), then alarms on n-grams never seen during training.
type TraceAnomaly struct {
	view  core.GuestView
	intro *vmi.Introspector
	n     int

	mu sync.Mutex
	// training toggles learn vs detect.
	training bool
	// model maps comm -> seen n-grams.
	model map[string]map[gram]bool
	// window holds the per-pid rolling syscall window.
	window map[int][]guest.Syscall
	// commOf remembers each pid's program.
	commOf     map[int]string
	anomalies  []Violation
	trainCount uint64
}

// gram is a fixed-size syscall n-gram (n <= 4).
type gram [4]guest.Syscall

// NewTraceAnomaly builds the IDS with n-gram length n (2..4).
func NewTraceAnomaly(view core.GuestView, intro *vmi.Introspector, n int) (*TraceAnomaly, error) {
	if view == nil || intro == nil {
		return nil, fmt.Errorf("syscallpolicy: TraceAnomaly requires View and Intro")
	}
	if n < 2 || n > 4 {
		return nil, fmt.Errorf("syscallpolicy: n-gram length %d outside [2,4]", n)
	}
	return &TraceAnomaly{
		view: view, intro: intro, n: n,
		training: true,
		model:    make(map[string]map[gram]bool),
		window:   make(map[int][]guest.Syscall),
		commOf:   make(map[int]string),
	}, nil
}

var _ core.Auditor = (*TraceAnomaly)(nil)

// Name implements core.Auditor.
func (t *TraceAnomaly) Name() string { return "syscall-trace-ids" }

// Mask implements core.Auditor.
func (t *TraceAnomaly) Mask() core.EventMask { return core.MaskOf(core.EvSyscall) }

// EndTraining freezes the model and starts detecting.
func (t *TraceAnomaly) EndTraining() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.training = false
	t.window = make(map[int][]guest.Syscall)
}

// Training reports the current mode.
func (t *TraceAnomaly) Training() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.training
}

// HandleEvent implements core.Auditor.
func (t *TraceAnomaly) HandleEvent(ev *core.Event) {
	entry, ok := deriveCaller(t.view, t.intro, ev)
	if !ok {
		return
	}
	nr := guest.Syscall(ev.SyscallNr)

	t.mu.Lock()
	defer t.mu.Unlock()
	t.commOf[entry.PID] = entry.Comm
	w := append(t.window[entry.PID], nr)
	if len(w) > t.n {
		w = w[len(w)-t.n:]
	}
	t.window[entry.PID] = w
	if len(w) < t.n {
		return
	}
	var g gram
	copy(g[:], w)

	if t.training {
		m := t.model[entry.Comm]
		if m == nil {
			m = make(map[gram]bool)
			t.model[entry.Comm] = m
		}
		m[g] = true
		t.trainCount++
		return
	}
	m, known := t.model[entry.Comm]
	if !known {
		// Unknown program: no baseline, stay silent (policy choice
		// matching the per-program opt-in of the literature).
		return
	}
	if !m[g] {
		t.anomalies = append(t.anomalies, Violation{
			PID: entry.PID, Comm: entry.Comm, Syscall: nr, At: ev.Time,
			Reason: fmt.Sprintf("novel %d-gram %v", t.n, formatGram(g, t.n)),
		})
	}
}

// Anomalies snapshots detected sequence anomalies.
func (t *TraceAnomaly) Anomalies() []Violation {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Violation, len(t.anomalies))
	copy(out, t.anomalies)
	return out
}

// ModelSize returns (programs, total n-grams) of the trained model.
func (t *TraceAnomaly) ModelSize() (programs, grams int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, m := range t.model {
		grams += len(m)
	}
	return len(t.model), grams
}

// Programs lists modeled program names.
func (t *TraceAnomaly) Programs() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.model))
	for comm := range t.model {
		out = append(out, comm)
	}
	sort.Strings(out)
	return out
}

func formatGram(g gram, n int) string {
	s := "["
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += g[i].String()
	}
	return s + "]"
}
