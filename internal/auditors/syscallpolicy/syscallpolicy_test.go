package syscallpolicy_test

import (
	"testing"
	"time"

	"hypertap/internal/auditors/syscallpolicy"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/guest"
	"hypertap/internal/hv"
	"hypertap/internal/vmi"
)

func bootVM(t *testing.T) (*hv.Machine, *vmi.Introspector) {
	t.Helper()
	m, err := hv.New(hv.Config{VCPUs: 2, MemBytes: 64 << 20, Guest: guest.Config{Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EnableMonitoring(intercept.Features{
		ProcessSwitch: true, ThreadSwitch: true, Syscalls: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	return m, vmi.New(m, m.Kernel().Symbols())
}

func TestEnforcerValidation(t *testing.T) {
	if _, err := syscallpolicy.NewEnforcer(syscallpolicy.EnforcerConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	m, intro := bootVM(t)
	if _, err := syscallpolicy.NewEnforcer(syscallpolicy.EnforcerConfig{View: m, Intro: intro}); err == nil {
		t.Fatal("empty ruleset accepted")
	}
}

func TestEnforcerAllowsPermittedCalls(t *testing.T) {
	m, intro := bootVM(t)
	rules := syscallpolicy.Ruleset{
		"webworker": syscallpolicy.Allow(
			guest.SysRead, guest.SysWrite, guest.SysOpen, guest.SysClose, guest.SysGetPID,
		),
	}
	enf, err := syscallpolicy.NewEnforcer(syscallpolicy.EnforcerConfig{View: m, Intro: intro, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EM().Register(enf, core.DeliverSync, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "webworker", UID: 1000,
		Program: &guest.LoopProgram{Body: []guest.Step{
			guest.DoSyscall(guest.SysOpen, 1),
			guest.DoSyscall(guest.SysRead, 3, 512),
			guest.DoSyscall(guest.SysClose, 3),
		}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	m.Run(100 * time.Millisecond)
	if got := enf.Violations(); len(got) != 0 {
		t.Fatalf("false positives: %v", got)
	}
	if enf.Checked() == 0 {
		t.Fatal("no calls checked")
	}
	if enf.Name() == "" || !enf.Mask().Has(core.EvSyscall) {
		t.Fatal("identity broken")
	}
}

func TestEnforcerFlagsForbiddenCall(t *testing.T) {
	m, intro := bootVM(t)
	rules := syscallpolicy.Ruleset{
		"webworker": syscallpolicy.Allow(guest.SysRead, guest.SysWrite),
	}
	var flagged []syscallpolicy.Violation
	enf, err := syscallpolicy.NewEnforcer(syscallpolicy.EnforcerConfig{
		View: m, Intro: intro, Rules: rules,
		OnViolation: func(v syscallpolicy.Violation) { flagged = append(flagged, v) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EM().Register(enf, core.DeliverSync, 0); err != nil {
		t.Fatal(err)
	}
	// The compromised worker suddenly spawns a process (classic shellcode
	// behaviour a syscall policy exists to stop).
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "webworker", UID: 1000,
		Program: guest.NewStepList(
			guest.DoSyscall(guest.SysRead, 0, 64),
			guest.Spawn(&guest.ProcSpec{Comm: "shell", UID: 1000,
				Program: guest.NewStepList(guest.Compute(time.Millisecond))}),
		),
	}, nil); err != nil {
		t.Fatal(err)
	}
	m.Run(100 * time.Millisecond)
	if len(flagged) == 0 {
		t.Fatal("forbidden spawn not flagged")
	}
	v := flagged[0]
	if v.Comm != "webworker" || v.Syscall != guest.SysSpawn {
		t.Fatalf("violation = %v", v)
	}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
	// Unconstrained programs stay free.
	for _, got := range enf.Violations() {
		if got.Comm != "webworker" {
			t.Fatalf("unconstrained program flagged: %v", got)
		}
	}
}

func TestTraceAnomalyValidation(t *testing.T) {
	m, intro := bootVM(t)
	if _, err := syscallpolicy.NewTraceAnomaly(nil, nil, 3); err == nil {
		t.Fatal("nil deps accepted")
	}
	if _, err := syscallpolicy.NewTraceAnomaly(m, intro, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := syscallpolicy.NewTraceAnomaly(m, intro, 5); err == nil {
		t.Fatal("n=5 accepted")
	}
}

func TestTraceAnomalyLearnsAndDetects(t *testing.T) {
	m, intro := bootVM(t)
	ids, err := syscallpolicy.NewTraceAnomaly(m, intro, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EM().Register(ids, core.DeliverSync, 0); err != nil {
		t.Fatal(err)
	}

	// Normal behaviour: the daemon loops open→read→close→log.
	normal := []guest.Step{
		guest.DoSyscall(guest.SysOpen, 1),
		guest.DoSyscall(guest.SysRead, 3, 128),
		guest.DoSyscall(guest.SysClose, 3),
		guest.DoSyscall(guest.SysLog, 1),
	}
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "daemon", UID: 2,
		Program: &guest.LoopProgram{Body: normal},
	}, nil); err != nil {
		t.Fatal(err)
	}
	m.Run(300 * time.Millisecond)
	if !ids.Training() {
		t.Fatal("left training unexpectedly")
	}
	ids.EndTraining()
	if ids.Training() {
		t.Fatal("still training after EndTraining")
	}
	programs, grams := ids.ModelSize()
	if programs == 0 || grams == 0 {
		t.Fatalf("empty model: %d programs, %d grams", programs, grams)
	}
	found := false
	for _, p := range ids.Programs() {
		if p == "daemon" {
			found = true
		}
	}
	if !found {
		t.Fatal("daemon not in the model")
	}

	// Normal traffic after training: quiet.
	m.Run(200 * time.Millisecond)
	if got := ids.Anomalies(); len(got) != 0 {
		t.Fatalf("false positives on trained behaviour: %v", got)
	}

	// A hijacked daemon deviates: it starts killing processes.
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "daemon", UID: 2,
		Program: guest.NewStepList(
			guest.DoSyscall(guest.SysOpen, 1),
			guest.DoSyscall(guest.SysKill, 99999),
			guest.DoSyscall(guest.SysSetUID, 0),
		),
	}, nil); err != nil {
		t.Fatal(err)
	}
	m.Run(200 * time.Millisecond)
	if got := ids.Anomalies(); len(got) == 0 {
		t.Fatal("hijacked sequence not flagged")
	} else if got[0].Comm != "daemon" {
		t.Fatalf("anomaly names %q", got[0].Comm)
	}
}

func TestTraceAnomalyUnknownProgramsSilent(t *testing.T) {
	m, intro := bootVM(t)
	ids, err := syscallpolicy.NewTraceAnomaly(m, intro, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EM().Register(ids, core.DeliverSync, 0); err != nil {
		t.Fatal(err)
	}
	ids.EndTraining() // empty model
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "novel", UID: 3,
		Program: &guest.LoopProgram{Body: []guest.Step{guest.DoSyscall(guest.SysGetPID)}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	m.Run(100 * time.Millisecond)
	if got := ids.Anomalies(); len(got) != 0 {
		t.Fatalf("unmodeled program flagged: %v", got)
	}
}
