// Package fleetwatch implements the host fleet's cross-VM consumer: an
// event-rate accountant subscribed fleet-wide on the shared Event
// Multiplexer.
//
// Per-VM auditors (GOSHD, HRKD, PED) see only their own VM's events; the
// accountant is the complement the per-host deployment of the paper's
// Fig. 2 enables — one subscriber that sees every VM's stream and can
// therefore notice *relative* anomalies no single-VM view exposes. It
// tallies event counts per VM over virtual-time windows and flags an exit
// storm when one VM's rate dwarfs the rest of the fleet's: the noisy
// neighbor whose monitoring (and exit) load degrades co-resident guests.
//
// Like every auditor, it consumes only the Event stream — no guest or
// hypervisor internals — so the eventsonly isolation invariant holds.
package fleetwatch

import (
	"fmt"
	"sync"
	"time"

	"hypertap/internal/core"
	"hypertap/internal/telemetry"
)

// Storm reports one windowed rate anomaly.
type Storm struct {
	// VM is the storming VM's identity on the shared EM.
	VM core.VMID
	// VMName is the registered name ("" when no resolver was configured).
	VMName string
	// Count is the VM's event count in the offending window.
	Count uint64
	// FleetMean is the mean count of the *other* active VMs in that window.
	FleetMean float64
	// WindowStart is the virtual time the offending window began.
	WindowStart time.Duration
	// Span is the causal span of the event whose arrival closed the window
	// and triggered the evaluation — the verdict's flight-recorder anchor.
	Span core.SpanID
}

func (s Storm) String() string {
	who := s.VMName
	if who == "" {
		who = fmt.Sprintf("vm%d", s.VM)
	}
	return fmt.Sprintf("fleetwatch: %s stormed %d events in window @%v (fleet mean %.1f)",
		who, s.Count, s.WindowStart, s.FleetMean)
}

// Config describes an accountant.
type Config struct {
	// Window is the virtual-time accounting window. Default 100ms.
	Window time.Duration
	// MinEvents is the per-window floor below which a VM can never storm
	// (absolute rate gate). Default 500.
	MinEvents uint64
	// Factor is the relative gate: a VM storms when its window count
	// exceeds Factor × the mean count of the other active VMs. Default 4.
	Factor float64
	// VMName, when set, resolves VMIDs to names for Storm reports and
	// per-VM telemetry labels (typically Multiplexer.VMName).
	VMName func(core.VMID) (string, bool)
	// OnStorm, when set, is invoked (on the delivering goroutine) per storm.
	OnStorm func(Storm)
}

// Accountant is the fleet-wide event-rate auditor.
type Accountant struct {
	cfg Config

	mu          sync.Mutex
	windowStart time.Duration
	window      []uint64 // per-VM counts, current window
	totals      []uint64 // per-VM counts, lifetime
	total       uint64
	storms      []Storm
	tel         *acctTelemetry
	vmCounters  []*telemetry.Counter
}

// acctTelemetry is the accountant's instrument set.
type acctTelemetry struct {
	reg    *telemetry.Registry
	events *telemetry.Counter
	storms *telemetry.Counter
}

// New builds an accountant.
func New(cfg Config) *Accountant {
	if cfg.Window <= 0 {
		cfg.Window = 100 * time.Millisecond
	}
	if cfg.MinEvents == 0 {
		cfg.MinEvents = 500
	}
	if cfg.Factor <= 0 {
		cfg.Factor = 4
	}
	return &Accountant{cfg: cfg}
}

var _ core.Auditor = (*Accountant)(nil)
var _ core.VMScoped = (*Accountant)(nil)

// Name implements core.Auditor.
func (a *Accountant) Name() string { return "fleetwatch" }

// Mask implements core.Auditor: rate accounting wants every event class.
func (a *Accountant) Mask() core.EventMask { return core.MaskAll }

// VMScope implements core.VMScoped: the accountant is the fleet-wide
// subscriber — it must see every VM to compare them.
func (a *Accountant) VMScope() core.VMScope { return core.ScopeFleet() }

// EnableTelemetry registers hypertap_fleetwatch_events_total (rolled up and,
// when a VMName resolver is configured, per-VM with a vm label) and
// hypertap_fleetwatch_storms_total on reg. Call before registering with the
// EM.
func (a *Accountant) EnableTelemetry(reg *telemetry.Registry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tel = &acctTelemetry{
		reg:    reg,
		events: reg.Counter("hypertap_fleetwatch_events_total"),
		storms: reg.Counter("hypertap_fleetwatch_storms_total"),
	}
}

// HandleEvent implements core.Auditor. Events arrive in fleet order (the
// shared EM's publish order), so window rollovers are deterministic for a
// deterministic schedule.
func (a *Accountant) HandleEvent(ev *core.Event) {
	a.mu.Lock()
	fired := a.handleOneLocked(ev)
	onStorm := a.cfg.OnStorm
	a.mu.Unlock()
	if onStorm != nil {
		for _, s := range fired {
			onStorm(s)
		}
	}
}

// HandleBatch implements core.BatchAuditor: one lock acquisition covers the
// whole drained claim, with each event's accounting — window growth,
// rollover evaluation, counters — applied in slice order exactly as
// HandleEvent would. OnStorm callbacks run after the batch's accounting,
// outside the lock, in firing order; storm contents are identical either
// way, and both the live and replayed drains batch identically, so the
// deferral is invisible to the equivalence gates.
func (a *Accountant) HandleBatch(evs []core.Event) {
	a.mu.Lock()
	var fired []Storm
	for i := range evs {
		if f := a.handleOneLocked(&evs[i]); len(f) != 0 {
			fired = append(fired, f...)
		}
	}
	onStorm := a.cfg.OnStorm
	a.mu.Unlock()
	if onStorm != nil {
		for _, s := range fired {
			onStorm(s)
		}
	}
}

var _ core.BatchAuditor = (*Accountant)(nil)

// handleOneLocked applies one event's accounting and returns the storms its
// arrival fired. Caller holds a.mu.
func (a *Accountant) handleOneLocked(ev *core.Event) []Storm {
	vm := int(ev.VM)
	for vm >= len(a.window) {
		a.window = append(a.window, 0)
		a.totals = append(a.totals, 0)
		a.vmCounters = append(a.vmCounters, nil)
	}
	var fired []Storm
	if ev.Time >= a.windowStart+a.cfg.Window {
		fired = a.closeWindowLocked(ev.Time, ev.Span)
	}
	a.window[vm]++
	a.totals[vm]++
	a.total++
	if a.tel != nil {
		a.tel.events.Inc()
		if ctr := a.perVMCounterLocked(ev.VM); ctr != nil {
			ctr.Inc()
		}
	}
	return fired
}

// perVMCounterLocked lazily creates the vm-labeled series for a VM the
// accountant has now seen. Caller holds a.mu.
func (a *Accountant) perVMCounterLocked(vm core.VMID) *telemetry.Counter {
	if a.tel == nil || a.cfg.VMName == nil {
		return nil
	}
	if c := a.vmCounters[vm]; c != nil {
		return c
	}
	name, ok := a.cfg.VMName(vm)
	if !ok {
		return nil
	}
	c := a.tel.reg.Counter("hypertap_fleetwatch_events_total", telemetry.L("vm", name))
	a.vmCounters[vm] = c
	return c
}

// closeWindowLocked evaluates the finished window for storms, opens the
// window containing now, and returns the storms it raised so the caller can
// run OnStorm outside the lock. span identifies the window-closing event.
// Caller holds a.mu.
func (a *Accountant) closeWindowLocked(now time.Duration, span core.SpanID) []Storm {
	var fired []Storm
	var windowTotal, active uint64
	for _, n := range a.window {
		if n > 0 {
			windowTotal += n
			active++
		}
	}
	for vm, n := range a.window {
		if n <= a.cfg.MinEvents {
			continue
		}
		var othersMean float64
		if active > 1 {
			othersMean = float64(windowTotal-n) / float64(active-1)
		}
		if float64(n) <= a.cfg.Factor*othersMean {
			continue
		}
		storm := Storm{VM: core.VMID(vm), Count: n, FleetMean: othersMean, WindowStart: a.windowStart, Span: span}
		if a.cfg.VMName != nil {
			if name, ok := a.cfg.VMName(storm.VM); ok {
				storm.VMName = name
			}
		}
		a.storms = append(a.storms, storm)
		fired = append(fired, storm)
		if a.tel != nil {
			a.tel.storms.Inc()
		}
	}
	for i := range a.window {
		a.window[i] = 0
	}
	// Snap the new window's start to the grid so idle gaps do not shift
	// later windows.
	a.windowStart += (now - a.windowStart) / a.cfg.Window * a.cfg.Window
	return fired
}

// Storms snapshots the raised storm reports.
func (a *Accountant) Storms() []Storm {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]Storm, len(a.storms))
	copy(out, a.storms)
	return out
}

// Total returns the lifetime fleet-wide event count.
func (a *Accountant) Total() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// VMTotal returns one VM's lifetime event count.
func (a *Accountant) VMTotal(vm core.VMID) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if int(vm) >= len(a.totals) {
		return 0
	}
	return a.totals[vm]
}
