package fleetwatch

import (
	"testing"
	"time"

	"hypertap/internal/core"
	"hypertap/internal/telemetry"
)

// feed publishes n synthetic events for vm spread evenly across [start,
// start+span).
func feed(a *Accountant, vm core.VMID, n int, start, span time.Duration) {
	for i := 0; i < n; i++ {
		ev := core.Event{
			Type: core.EvSyscall,
			VM:   vm,
			Time: start + span*time.Duration(i)/time.Duration(n),
		}
		a.HandleEvent(&ev)
	}
}

func TestStormDetection(t *testing.T) {
	names := []string{"quiet-a", "noisy", "quiet-b"}
	var got []Storm
	a := New(Config{
		Window:    100 * time.Millisecond,
		MinEvents: 50,
		Factor:    4,
		VMName: func(vm core.VMID) (string, bool) {
			if int(vm) < len(names) {
				return names[vm], true
			}
			return "", false
		},
		OnStorm: func(s Storm) { got = append(got, s) },
	})

	// Window 0: balanced — 40 events each, below MinEvents. No storm.
	// Window 1: VM 1 spams 400 while the others stay at 40.
	for w, counts := range [][3]int{{40, 40, 40}, {40, 400, 40}} {
		start := time.Duration(w) * 100 * time.Millisecond
		for vm, n := range counts {
			feed(a, core.VMID(vm), n, start, 100*time.Millisecond)
		}
	}
	// One event in window 2 closes window 1.
	feed(a, 0, 1, 200*time.Millisecond, time.Millisecond)

	storms := a.Storms()
	if len(storms) != 1 {
		t.Fatalf("storms = %v, want exactly one", storms)
	}
	s := storms[0]
	if s.VM != 1 || s.VMName != "noisy" {
		t.Fatalf("storm names %q (vm%d), want noisy (vm1)", s.VMName, s.VM)
	}
	if s.Count != 400 {
		t.Fatalf("storm count = %d, want 400", s.Count)
	}
	if s.FleetMean != 40 {
		t.Fatalf("fleet mean = %v, want 40", s.FleetMean)
	}
	if s.WindowStart != 100*time.Millisecond {
		t.Fatalf("window start = %v, want 100ms", s.WindowStart)
	}
	if len(got) != 1 || got[0] != s {
		t.Fatalf("OnStorm saw %v, want [%v]", got, s)
	}
}

func TestBalancedLoadNoStorm(t *testing.T) {
	a := New(Config{Window: 100 * time.Millisecond, MinEvents: 50, Factor: 4})
	for w := 0; w < 5; w++ {
		start := time.Duration(w) * 100 * time.Millisecond
		for vm := 0; vm < 4; vm++ {
			feed(a, core.VMID(vm), 300, start, 100*time.Millisecond)
		}
	}
	if storms := a.Storms(); len(storms) != 0 {
		t.Fatalf("balanced fleet raised storms: %v", storms)
	}
	if a.Total() != 5*4*300 {
		t.Fatalf("total = %d, want %d", a.Total(), 5*4*300)
	}
	for vm := core.VMID(0); vm < 4; vm++ {
		if a.VMTotal(vm) != 5*300 {
			t.Fatalf("vm%d total = %d, want %d", vm, a.VMTotal(vm), 5*300)
		}
	}
}

func TestSoloVMStormsOnAbsoluteGate(t *testing.T) {
	// A single-VM host has no fleet mean; MinEvents alone gates.
	a := New(Config{Window: 100 * time.Millisecond, MinEvents: 1000, Factor: 4})
	feed(a, 0, 1500, 0, 100*time.Millisecond)
	feed(a, 0, 1, 100*time.Millisecond, time.Millisecond)
	storms := a.Storms()
	if len(storms) != 1 || storms[0].Count != 1500 || storms[0].FleetMean != 0 {
		t.Fatalf("storms = %v, want one with count 1500 and zero mean", storms)
	}
}

func TestFleetScopeAndMask(t *testing.T) {
	a := New(Config{})
	if !a.VMScope().Fleet() {
		t.Fatal("fleetwatch must subscribe fleet-wide")
	}
	if a.Mask() != core.MaskAll {
		t.Fatalf("mask = %v, want MaskAll", a.Mask())
	}
	if a.Name() != "fleetwatch" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestPerVMTelemetry(t *testing.T) {
	names := []string{"vm-a", "vm-b"}
	reg := telemetry.NewRegistry()
	a := New(Config{
		Window: time.Second, MinEvents: 10, Factor: 2,
		VMName: func(vm core.VMID) (string, bool) {
			if int(vm) < len(names) {
				return names[vm], true
			}
			return "", false
		},
	})
	a.EnableTelemetry(reg)
	feed(a, 0, 3, 0, time.Millisecond)
	feed(a, 1, 5, 0, time.Millisecond)

	want := map[string]uint64{"": 8, "vm-a": 3, "vm-b": 5}
	snap := reg.Snapshot()
	got := make(map[string]uint64)
	for _, m := range snap.Counters {
		if m.Name != "hypertap_fleetwatch_events_total" {
			continue
		}
		var vm string
		for _, l := range m.Labels {
			if l.Key == "vm" {
				vm = l.Value
			}
		}
		got[vm] = m.Value
	}
	for vm, n := range want {
		if got[vm] != n {
			t.Fatalf("events_total{vm=%q} = %d, want %d (all: %v)", vm, got[vm], n, got)
		}
	}
}
