package hrkd

import (
	"testing"
	"time"

	"hypertap/internal/arch"
	"hypertap/internal/core"
	"hypertap/internal/guest"
	"hypertap/internal/telemetry"
)

// stubView is the minimal GuestView a cross-check against an explicit task
// list touches: only Now (for the report timestamp).
type stubView struct{}

func (stubView) NumVCPUs() int                                          { return 1 }
func (stubView) Regs(int) arch.RegisterFile                             { return arch.RegisterFile{} }
func (stubView) ReadGPA(arch.GPA, []byte) error                         { return nil }
func (stubView) ReadU64GPA(arch.GPA) (uint64, error)                    { return 0, nil }
func (stubView) ReadU32GPA(arch.GPA) (uint32, error)                    { return 0, nil }
func (stubView) TranslateGVA(arch.GPA, arch.GVA) (arch.GPA, bool)       { return 0, false }
func (stubView) ReadU64GVA(arch.GPA, arch.GVA) (uint64, error)          { return 0, nil }
func (stubView) ReadU32GVA(arch.GPA, arch.GVA) (uint32, error)          { return 0, nil }
func (stubView) ReadCStringGVA(arch.GPA, arch.GVA, int) (string, error) { return "", nil }
func (stubView) Now() time.Duration                                     { return 0 }
func (stubView) PauseVM()                                               {}
func (stubView) ResumeVM()                                              {}
func (stubView) Paused() bool                                           { return false }

var _ core.GuestView = stubView{}

// stubCounter is a fixed Fig. 3A process count.
type stubCounter int

func (c stubCounter) CountProcesses() int { return int(c) }

// TestDeterministicLatencyClock swaps the package wall clock for a stepping
// fake and checks the cross-check latency telemetry becomes exactly
// reproducible — the reason wallNow is a variable rather than time.Now.
func TestDeterministicLatencyClock(t *testing.T) {
	var calls int
	wallNow = func() time.Time {
		calls++
		return time.Unix(0, int64(calls)*int64(time.Millisecond))
	}
	defer func() { wallNow = time.Now }()

	d := &Detector{
		cfg:  Config{View: stubView{}, Counter: stubCounter(1), Window: 2 * time.Second},
		seen: make(map[arch.GVA]*SeenThread),
	}
	reg := telemetry.NewRegistry()
	d.EnableTelemetry(reg)

	report := d.CrossCheckAgainst([]guest.ProcEntry{{PID: 1, Comm: "init"}})
	if report.Detected() {
		t.Fatalf("unexpected findings: %+v", report.Hidden)
	}
	hs := reg.Histogram("hypertap_hrkd_crossview_seconds").Snapshot()
	if hs.Count != 1 {
		t.Fatalf("latency observations = %d, want 1", hs.Count)
	}
	if hs.Max != time.Millisecond {
		t.Fatalf("latency = %v, want exactly 1ms from the fake clock", hs.Max)
	}
}
