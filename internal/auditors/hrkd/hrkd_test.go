package hrkd_test

import (
	"testing"
	"time"

	"hypertap/internal/auditors/hrkd"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/guest"
	"hypertap/internal/hv"
	"hypertap/internal/malware"
	"hypertap/internal/vmi"
)

// rig is a monitored VM with HRKD attached.
type rig struct {
	m     *hv.Machine
	det   *hrkd.Detector
	intro *vmi.Introspector
}

func newRig(t *testing.T) *rig {
	t.Helper()
	m, err := hv.New(hv.Config{VCPUs: 2, MemBytes: 64 << 20, Guest: guest.Config{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := m.EnableMonitoring(intercept.Features{
		ProcessSwitch: true, ThreadSwitch: true, TSSIntegrity: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	intro := vmi.New(m, m.Kernel().Symbols())
	det, err := hrkd.New(hrkd.Config{View: m, Counter: engine, Intro: intro})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EM().Register(det, core.DeliverSync, 0); err != nil {
		t.Fatal(err)
	}
	return &rig{m: m, det: det, intro: intro}
}

func (r *rig) addProc(t *testing.T, comm string, uid uint32) *guest.Task {
	t.Helper()
	task, err := r.m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: comm, UID: uid,
		Program: &guest.LoopProgram{Body: []guest.Step{
			guest.Compute(time.Millisecond),
			guest.Sleep(2 * time.Millisecond),
		}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return task
}

func TestNewValidation(t *testing.T) {
	if _, err := hrkd.New(hrkd.Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestIdentity(t *testing.T) {
	r := newRig(t)
	if r.det.Name() != "hrkd" {
		t.Errorf("Name = %q", r.det.Name())
	}
	if !r.det.Mask().Has(core.EvThreadSwitch) {
		t.Error("mask missing thread switches")
	}
}

func TestCleanSystemNoFindings(t *testing.T) {
	r := newRig(t)
	r.addProc(t, "clean", 100)
	r.m.Run(100 * time.Millisecond)

	report, err := r.det.CrossCheck()
	if err != nil {
		t.Fatal(err)
	}
	if report.Detected() {
		t.Fatalf("false positives on a clean system: %v", report.Hidden)
	}
	if report.ArchThreads == 0 || report.ArchAddressSpaces == 0 {
		t.Fatalf("empty architectural views: %+v", report)
	}
}

func TestSeenThreadsIdentifyRunners(t *testing.T) {
	r := newRig(t)
	r.addProc(t, "runner", 100)
	r.m.Run(100 * time.Millisecond)
	var found bool
	for _, st := range r.det.SeenThreads() {
		if st.Comm == "runner" && st.Switches > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("runner never appeared in the execution view")
	}
}

func TestDetectsDKOMHiddenProcess(t *testing.T) {
	r := newRig(t)
	r.addProc(t, "malware", 0)
	r.m.Run(30 * time.Millisecond)

	rk := &malware.Rootkit{RkName: "fu", Techniques: malware.TechDKOM, HideComm: "malware"}
	if _, err := r.m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "dropper", UID: 0,
		Program: guest.NewStepList(guest.LoadModule(rk)),
	}, nil); err != nil {
		t.Fatal(err)
	}
	r.m.Run(100 * time.Millisecond)

	report, err := r.det.CrossCheck()
	if err != nil {
		t.Fatal(err)
	}
	if !report.Detected() {
		t.Fatal("DKOM-hidden process not detected")
	}
	var hit bool
	for _, f := range report.Hidden {
		if f.Comm == "malware" {
			hit = true
		}
		if f.String() == "" {
			t.Error("empty finding string")
		}
	}
	if !hit {
		t.Fatalf("findings name the wrong task: %v", report.Hidden)
	}
}

func TestDetectsHiddenKernelThread(t *testing.T) {
	r := newRig(t)
	// A malicious kernel thread (no own address space — invisible to the
	// CR3-based process count, caught by the thread-level view).
	kt, err := r.m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "evil-kthread", KernelThread: true,
		Program: &guest.LoopProgram{Body: []guest.Step{
			guest.Compute(time.Millisecond),
			guest.Sleep(time.Millisecond),
		}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.m.Run(30 * time.Millisecond)

	rk := &malware.Rootkit{RkName: "kthread-hider", Techniques: malware.TechDKOM, HidePIDs: []int{kt.PID}}
	if _, err := r.m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "dropper", UID: 0,
		Program: guest.NewStepList(guest.LoadModule(rk)),
	}, nil); err != nil {
		t.Fatal(err)
	}
	r.m.Run(100 * time.Millisecond)

	report, err := r.det.CrossCheck()
	if err != nil {
		t.Fatal(err)
	}
	var hit bool
	for _, f := range report.Hidden {
		if f.PID == kt.PID {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("hidden kernel thread not detected: %v", report.Hidden)
	}
}

func TestExitedProcessesNotFlagged(t *testing.T) {
	r := newRig(t)
	if _, err := r.m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "brief", UID: 100,
		Program: guest.NewStepList(guest.Compute(5 * time.Millisecond)),
	}, nil); err != nil {
		t.Fatal(err)
	}
	r.m.Run(50 * time.Millisecond) // runs, then exits

	report, err := r.det.CrossCheck()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range report.Hidden {
		if f.Comm == "brief" {
			t.Fatal("legitimately exited process flagged as hidden")
		}
	}
}

func TestStaleThreadsPruned(t *testing.T) {
	r := newRig(t)
	r.addProc(t, "w", 100)
	r.m.Run(50 * time.Millisecond)
	before := len(r.det.SeenThreads())
	if before == 0 {
		t.Fatal("no seen threads")
	}
	// Kill everything user-level and wait past the window.
	for _, task := range r.m.Kernel().TasksByComm("w") {
		pid := task.PID
		if _, err := r.m.Kernel().CreateProcess(&guest.ProcSpec{
			Comm: "killer", UID: 0,
			Program: guest.NewStepList(guest.DoSyscall(guest.SysKill, uint64(pid))),
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	r.m.Run(3 * time.Second) // window is 2s
	if _, err := r.det.CrossCheck(); err != nil {
		t.Fatal(err)
	}
	for _, st := range r.det.SeenThreads() {
		if st.Comm == "w" {
			t.Fatal("dead thread survived pruning")
		}
	}
}

// Ablation (§IV-B): a detector that trusts only OS invariants — comparing
// the in-guest view against VMI — cannot see a DKOM rootkit, because both
// views read the same corrupted list. The architectural view is what makes
// detection possible.
func TestAblationVMIOnlyMissesDKOM(t *testing.T) {
	r := newRig(t)
	r.addProc(t, "malware", 0)
	r.m.Run(30 * time.Millisecond)
	rk := &malware.Rootkit{RkName: "suckit", Techniques: malware.TechKmem | malware.TechDKOM, HideComm: "malware"}
	if _, err := r.m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "dropper", UID: 0,
		Program: guest.NewStepList(guest.LoadModule(rk)),
	}, nil); err != nil {
		t.Fatal(err)
	}
	r.m.Run(50 * time.Millisecond)

	// The "VMI-only detector": diff VMI listing vs itself — both miss it.
	vmiView, err := r.intro.ListProcesses()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range vmiView {
		if e.Comm == "malware" {
			t.Fatal("VMI still sees the DKOM'd process; ablation premise broken")
		}
	}
	// HRKD's architectural cross-view still catches it.
	report := r.det.CrossCheckAgainst(vmiView)
	if !report.Detected() {
		t.Fatal("architectural cross-view failed where it must succeed")
	}
}

func TestDetectsHiddenUserThread(t *testing.T) {
	r := newRig(t)
	// A multi-threaded app: the leader stays visible while a rootkit hides
	// one worker thread — the thread-level hiding the paper says HRKD
	// catches "regardless of their hiding mechanisms".
	leader, err := r.m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "app", UID: 1000,
		Program: &guest.LoopProgram{Body: []guest.Step{
			guest.Compute(time.Millisecond), guest.Sleep(time.Millisecond),
		}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	worker, err := r.m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "app-worker", UID: 1000, ThreadOfPID: leader.PID,
		Program: &guest.LoopProgram{Body: []guest.Step{
			guest.Compute(time.Millisecond), guest.Sleep(time.Millisecond),
		}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.m.Run(30 * time.Millisecond)

	rk := &malware.Rootkit{RkName: "threadhider", Techniques: malware.TechDKOM,
		HidePIDs: []int{worker.PID}}
	if _, err := r.m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "dropper", UID: 0,
		Program: guest.NewStepList(guest.LoadModule(rk)),
	}, nil); err != nil {
		t.Fatal(err)
	}
	r.m.Run(100 * time.Millisecond)

	report, err := r.det.CrossCheck()
	if err != nil {
		t.Fatal(err)
	}
	var hitWorker, flaggedLeader bool
	for _, f := range report.Hidden {
		if f.PID == worker.PID {
			hitWorker = true
		}
		if f.PID == leader.PID {
			flaggedLeader = true
		}
	}
	if !hitWorker {
		t.Fatalf("hidden thread not detected: %v", report.Hidden)
	}
	if flaggedLeader {
		t.Fatal("visible leader falsely flagged")
	}
}
