// Package hrkd implements Hidden RootKit Detection, the paper's security
// auditor built on the same context-switch events as GOSHD (§VII-B).
//
// HRKD's insight is that a process or thread can hide from every OS-level
// view, but not from the CPU: to run, it must load its page directory into
// CR3 and its kernel stack into TSS.RSP0 — architectural invariants HyperTap
// intercepts. HRKD therefore maintains two *trusted* views:
//
//   - the address-space view: the PDBA set of the process-counting
//     algorithm (Fig. 3A), giving a lower bound on live user processes;
//   - the execution view: every thread observed in a thread-switch event,
//     identified by its task_struct derived via RSP0 → thread_info.
//
// Cross-validating those views against OS-invariant views (the VMI list
// walk, or an in-guest ps report) reveals hidden processes regardless of the
// hiding technique: DKOM, syscall hijacking and kmem patching all corrupt
// only the untrusted side of the comparison.
package hrkd

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hypertap/internal/arch"
	"hypertap/internal/core"
	"hypertap/internal/guest"
	"hypertap/internal/telemetry"
	"hypertap/internal/vmi"
)

// wallNow supplies wall-clock time for telemetry latency sampling — the one
// legitimately real-time read in this package, measuring the true cost of a
// cross-validation pass. It is a package variable so tests can substitute a
// deterministic clock.
var wallNow = time.Now //hypertap:allow wallclock latency sampling measures real cross-check cost; swappable in tests

// ProcessCounter is the slice of the interception engine HRKD needs: the
// Fig. 3A process-counting algorithm.
type ProcessCounter interface {
	CountProcesses() int
}

// SeenThread is one thread observed using a vCPU, with its derived identity.
type SeenThread struct {
	PID      int
	Comm     string
	TaskGVA  arch.GVA
	LastSeen time.Duration
	Switches uint64
	// KernelThread marks tasks flagged as kthreads in their task_struct.
	KernelThread bool
	// Span is the causal span of the last thread switch that ran this task.
	Span core.SpanID
}

// Finding is one detected hidden task.
type Finding struct {
	PID    int
	Comm   string
	Reason string
	At     time.Duration
	// Span is the causal span of the hidden task's last observed switch —
	// the verdict's flight-recorder anchor.
	Span core.SpanID
}

func (f Finding) String() string {
	return fmt.Sprintf("hrkd: hidden task pid=%d comm=%q (%s) at %v", f.PID, f.Comm, f.Reason, f.At)
}

// CrossViewReport is the result of one cross-validation pass.
type CrossViewReport struct {
	// At is the virtual time of the check.
	At time.Duration
	// ArchAddressSpaces is the swept PDBA count (trusted lower bound on
	// user processes + the kernel's init_mm).
	ArchAddressSpaces int
	// ArchThreads is the number of distinct recently-seen threads.
	ArchThreads int
	// ViewTasks is the number of tasks the compared (untrusted) view shows.
	ViewTasks int
	// Hidden lists tasks present architecturally but absent from the view.
	Hidden []Finding
}

// Detected reports whether the pass found hidden tasks.
func (r *CrossViewReport) Detected() bool { return len(r.Hidden) > 0 }

// Config describes a detector.
type Config struct {
	// VM scopes the detector to one VM on a host-shared Event Multiplexer;
	// View, Counter and Intro must all belong to that VM. Zero (VM 0) is
	// correct for solo machines.
	VM core.VMID
	// View is the guest helper API.
	View core.GuestView
	// Counter is the Fig. 3A process counter (the interception engine).
	Counter ProcessCounter
	// Intro decodes guest structures for identity derivation.
	Intro *vmi.Introspector
	// Window is how recently a thread must have run to count as live in a
	// cross-check. Default 2s.
	Window time.Duration
}

// Detector is the HRKD auditor.
type Detector struct {
	cfg Config

	mu sync.Mutex
	// seen maps RSP0 → thread identity, keyed by the architectural thread
	// identifier the paper proposes.
	seen map[arch.GVA]*SeenThread
	tel  *detTelemetry
}

// detTelemetry is HRKD's instrument set.
type detTelemetry struct {
	checks  *telemetry.Counter
	hidden  *telemetry.Counter
	latency *telemetry.Histogram
}

// EnableTelemetry registers HRKD's instruments on reg:
// hypertap_hrkd_crossview_checks_total counts cross-validation passes,
// hypertap_hrkd_crossview_seconds records their latency, and
// hypertap_hrkd_hidden_tasks_total counts hidden-task findings.
func (d *Detector) EnableTelemetry(reg *telemetry.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tel = &detTelemetry{
		checks:  reg.Counter("hypertap_hrkd_crossview_checks_total"),
		hidden:  reg.Counter("hypertap_hrkd_hidden_tasks_total"),
		latency: reg.Histogram("hypertap_hrkd_crossview_seconds"),
	}
}

// New builds the detector.
func New(cfg Config) (*Detector, error) {
	if cfg.View == nil || cfg.Counter == nil || cfg.Intro == nil {
		return nil, fmt.Errorf("hrkd: Config requires View, Counter and Intro")
	}
	if cfg.Window == 0 {
		cfg.Window = 2 * time.Second
	}
	return &Detector{cfg: cfg, seen: make(map[arch.GVA]*SeenThread)}, nil
}

var _ core.Auditor = (*Detector)(nil)
var _ core.VMScoped = (*Detector)(nil)

// Name implements core.Auditor.
func (d *Detector) Name() string { return "hrkd" }

// VMScope implements core.VMScoped: the detector cross-checks one VM's
// GuestView, so on a shared EM it subscribes to that VM's events only.
func (d *Detector) VMScope() core.VMScope { return core.ScopeVM(d.cfg.VM) }

// Mask implements core.Auditor: the same context-switch events GOSHD uses.
func (d *Detector) Mask() core.EventMask {
	return core.MaskOf(core.EvThreadSwitch, core.EvProcessSwitch)
}

// HandleEvent implements core.Auditor: each thread switch puts the incoming
// thread on the inspection list, whatever any kernel list says.
func (d *Detector) HandleEvent(ev *core.Event) {
	if ev.Type != core.EvThreadSwitch {
		return
	}
	cr3 := ev.Regs.CR3
	if cr3 == 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	st, ok := d.seen[ev.RSP0]
	if !ok {
		entry, err := d.cfg.Intro.DeriveTaskFromRSP0(cr3, ev.RSP0)
		if err != nil {
			return
		}
		gva, err := d.cfg.Intro.TaskStructGVAFromRSP0(cr3, ev.RSP0)
		if err != nil {
			return
		}
		flags, _ := d.cfg.View.ReadU32GVA(cr3, gva+guest.TaskOffFlags)
		st = &SeenThread{
			PID:          entry.PID,
			Comm:         entry.Comm,
			TaskGVA:      gva,
			KernelThread: flags&guest.TaskFlagKernelThread != 0,
		}
		d.seen[ev.RSP0] = st
	}
	st.LastSeen = ev.Time
	st.Span = ev.Span
	st.Switches++
}

// SeenThreads snapshots the execution view.
func (d *Detector) SeenThreads() []SeenThread {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]SeenThread, 0, len(d.seen))
	for _, st := range d.seen {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PID < out[j].PID })
	return out
}

// CrossCheck validates the architectural views against the hypervisor-side
// VMI list walk (the strongest untrusted view available out-of-VM).
func (d *Detector) CrossCheck() (*CrossViewReport, error) {
	list, err := d.cfg.Intro.ListProcesses()
	if err != nil {
		return nil, fmt.Errorf("hrkd: VMI comparison view: %w", err)
	}
	return d.CrossCheckAgainst(list), nil
}

// CrossCheckAgainst validates the architectural views against any
// OS-invariant task listing — the VMI walk or an in-guest ps/Task Manager
// report ("a trusted view that can be cross-validated against other views").
func (d *Detector) CrossCheckAgainst(view []guest.ProcEntry) *CrossViewReport {
	start := wallNow()
	now := d.cfg.View.Now()
	inView := make(map[int]bool, len(view))
	for _, e := range view {
		inView[e.PID] = true
	}

	report := &CrossViewReport{
		At:                now,
		ArchAddressSpaces: d.cfg.Counter.CountProcesses(),
		ViewTasks:         len(view),
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	// Walk the execution view in a stable order: each candidate may read the
	// guest (taskState below), and those reads must happen in the same order
	// on every run for capture replay (internal/capture) to line up its
	// recorded view results. Map iteration order would shuffle them.
	rsp0s := make([]arch.GVA, 0, len(d.seen))
	for rsp0 := range d.seen {
		rsp0s = append(rsp0s, rsp0)
	}
	sort.Slice(rsp0s, func(i, j int) bool { return rsp0s[i] < rsp0s[j] })
	for _, rsp0 := range rsp0s {
		st := d.seen[rsp0]
		if now-st.LastSeen > d.cfg.Window {
			// Stale: the thread has not run recently; drop it so exited
			// tasks do not pollute the comparison.
			delete(d.seen, rsp0)
			continue
		}
		report.ArchThreads++
		if inView[st.PID] {
			continue
		}
		// Seen on the CPU but absent from the list: hidden — unless it
		// legitimately exited a moment ago. Consult its task_struct state
		// (still readable; the arena is not recycled within the window).
		if state, err := d.taskState(st.TaskGVA); err == nil && state == guest.StateZombie {
			continue
		}
		report.Hidden = append(report.Hidden, Finding{
			PID:    st.PID,
			Comm:   st.Comm,
			Reason: "runs on CPU but absent from task list",
			At:     now,
			Span:   st.Span,
		})
	}
	sort.Slice(report.Hidden, func(i, j int) bool { return report.Hidden[i].PID < report.Hidden[j].PID })
	if d.tel != nil {
		d.tel.checks.Inc()
		d.tel.hidden.Add(uint64(len(report.Hidden)))
		d.tel.latency.Observe(wallNow().Sub(start))
	}
	return report
}

// taskState reads the live state field of a task_struct.
func (d *Detector) taskState(gva arch.GVA) (guest.TaskState, error) {
	cr3 := d.cfg.View.Regs(0).CR3
	v, err := d.cfg.View.ReadU32GVA(cr3, gva+guest.TaskOffState)
	if err != nil {
		return 0, err
	}
	return guest.TaskState(v), nil
}
