package inject

import (
	"testing"
	"testing/quick"
	"time"

	"hypertap/internal/guest"
)

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(Fault{Site: 0, Persistence: Transient}, nil); err == nil {
		t.Error("site 0 accepted")
	}
	if _, err := NewPlan(Fault{Site: 1}, nil); err == nil {
		t.Error("zero persistence accepted")
	}
	if _, err := NewPlan(Fault{Site: 1, Persistence: Transient}, nil); err != nil {
		t.Error(err)
	}
}

func TestTransientFiresOnce(t *testing.T) {
	now := time.Duration(0)
	plan, err := NewPlan(Fault{Site: 5, Persistence: Transient}, func() time.Duration { return now })
	if err != nil {
		t.Fatal(err)
	}
	if plan.Executed() {
		t.Fatal("executed before any consult")
	}
	now = 3 * time.Second
	if !plan.Armed(5) {
		t.Fatal("first consult not armed")
	}
	for i := 0; i < 10; i++ {
		if plan.Armed(5) {
			t.Fatal("transient fault fired twice")
		}
	}
	if plan.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", plan.Fired())
	}
	if plan.ActivatedAt() != 3*time.Second {
		t.Fatalf("activated at %v, want 3s", plan.ActivatedAt())
	}
	if !plan.Executed() {
		t.Fatal("not marked executed")
	}
}

func TestPersistentFiresAlways(t *testing.T) {
	plan, err := NewPlan(Fault{Site: 5, Persistence: Persistent}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !plan.Armed(5) {
			t.Fatal("persistent fault not armed")
		}
	}
	if plan.Fired() != 10 {
		t.Fatalf("fired = %d, want 10", plan.Fired())
	}
}

func TestOtherSitesNeverArmed(t *testing.T) {
	plan, err := NewPlan(Fault{Site: 5, Persistence: Persistent}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Armed(6) || plan.Armed(4) {
		t.Fatal("wrong site armed")
	}
	if plan.Executed() {
		t.Fatal("wrong-site consults counted as execution")
	}
}

// Property: a transient plan fires exactly once no matter the consult
// sequence; a persistent plan fires exactly as often as its site is hit.
func TestPropertyPlanSemantics(t *testing.T) {
	f := func(hits []uint8, persistent bool) bool {
		p := Transient
		if persistent {
			p = Persistent
		}
		plan, err := NewPlan(Fault{Site: 3, Persistence: p}, nil)
		if err != nil {
			return false
		}
		siteHits := 0
		for _, h := range hits {
			site := guest.SiteID(h%5 + 1)
			if site == 3 {
				siteHits++
			}
			plan.Armed(site)
		}
		if persistent {
			return int(plan.Fired()) == siteHits
		}
		want := 0
		if siteHits > 0 {
			want = 1
		}
		return int(plan.Fired()) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range AllOutcomes() {
		if o.String() == "" {
			t.Fatalf("outcome %d has empty string", o)
		}
	}
	if Outcome(99).String() == "" {
		t.Fatal("unknown outcome empty string")
	}
	for _, p := range []Persistence{Transient, Persistent, Persistence(9)} {
		if p.String() == "" {
			t.Fatal("empty persistence string")
		}
	}
}

func TestRunResultLatencies(t *testing.T) {
	r := RunResult{ActivatedAt: 2 * time.Second, FirstAlarmAt: 6 * time.Second, FullHangAt: 9 * time.Second}
	if lat, ok := r.DetectionLatency(); !ok || lat != 4*time.Second {
		t.Fatalf("detection latency = %v,%v", lat, ok)
	}
	if lat, ok := r.FullHangLatency(); !ok || lat != 7*time.Second {
		t.Fatalf("full-hang latency = %v,%v", lat, ok)
	}
	empty := RunResult{}
	if _, ok := empty.DetectionLatency(); ok {
		t.Fatal("latency from empty result")
	}
	if _, ok := empty.FullHangLatency(); ok {
		t.Fatal("full latency from empty result")
	}
}
