// Package inject implements the kernel fault-injection framework of §VIII-A,
// following the hang-fault model the paper adopts from Cotroneo et al.:
// missing spinlock releases, wrong lock orderings, missing unlock/lock
// pairs, and missing interrupt-state restorations, injected at the 374
// instrumented locations of the miniOS kernel, with transient (activate
// once) or persistent (activate on every execution) semantics.
package inject

import (
	"fmt"
	"sync"
	"time"

	"hypertap/internal/guest"
)

// Persistence selects the fault's activation semantics.
type Persistence uint8

// Persistence modes.
const (
	// Transient faults are activated only the first time the fault
	// location executes.
	Transient Persistence = iota + 1
	// Persistent faults are activated every time the location executes.
	Persistent
)

func (p Persistence) String() string {
	switch p {
	case Transient:
		return "transient"
	case Persistent:
		return "persistent"
	default:
		return fmt.Sprintf("Persistence(%d)", uint8(p))
	}
}

// Fault is one injection: a site plus activation semantics.
type Fault struct {
	Site        guest.SiteID
	Persistence Persistence
}

// Plan implements guest.FaultPlan for a single fault, tracking whether the
// fault location was ever executed (the "Not Activated" outcome) and when
// the fault first fired (the latency measurements' activation time).
type Plan struct {
	fault Fault
	// now supplies the virtual time for activation stamping.
	now func() time.Duration

	mu          sync.Mutex
	consulted   uint64
	fired       uint64
	activatedAt time.Duration
}

// NewPlan builds a plan for one fault. now may be nil (activation time then
// stays zero).
func NewPlan(f Fault, now func() time.Duration) (*Plan, error) {
	if f.Site <= 0 {
		return nil, fmt.Errorf("inject: invalid site %d", f.Site)
	}
	if f.Persistence != Transient && f.Persistence != Persistent {
		return nil, fmt.Errorf("inject: invalid persistence %v", f.Persistence)
	}
	return &Plan{fault: f, now: now}, nil
}

var _ guest.FaultPlan = (*Plan)(nil)

// Armed implements guest.FaultPlan.
func (p *Plan) Armed(site guest.SiteID) bool {
	if site != p.fault.Site {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.consulted++
	if p.fault.Persistence == Transient && p.fired > 0 {
		return false
	}
	p.fired++
	if p.fired == 1 && p.now != nil {
		p.activatedAt = p.now()
	}
	return true
}

// Executed reports whether the fault location was reached at all.
func (p *Plan) Executed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.consulted > 0
}

// Fired returns how many times the fault was applied.
func (p *Plan) Fired() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// ActivatedAt returns the virtual time of first activation (zero if never).
func (p *Plan) ActivatedAt() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.activatedAt
}

// Outcome classifies one injection run, following the paper's five-way
// taxonomy (§VIII-A2).
type Outcome uint8

// Outcomes.
const (
	// NotActivated: the workload never executed the faulty location.
	NotActivated Outcome = iota + 1
	// NotManifested: the fault executed but no observable failure occurred.
	NotManifested
	// NotDetected: the external probe declared the VM failed, but GOSHD
	// raised no alarm (the paper's 24 SSH-probe cases).
	NotDetected
	// PartialHang: GOSHD alarmed on a proper subset of vCPUs, and at least
	// one vCPU stayed operational for the observation window.
	PartialHang
	// FullHang: all vCPUs hung within the observation window.
	FullHang
)

func (o Outcome) String() string {
	switch o {
	case NotActivated:
		return "Not Activated"
	case NotManifested:
		return "Not Manifested"
	case NotDetected:
		return "Not Detected"
	case PartialHang:
		return "Partial Hang"
	case FullHang:
		return "Full Hang"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// AllOutcomes lists the taxonomy in report order.
func AllOutcomes() []Outcome {
	return []Outcome{NotActivated, NotManifested, NotDetected, PartialHang, FullHang}
}

// RunResult is the classification of one injection run plus its latency
// observations (for Fig. 5).
type RunResult struct {
	Fault   Fault
	Outcome Outcome
	// ActivatedAt is the virtual time the fault first fired.
	ActivatedAt time.Duration
	// FirstAlarmAt is the virtual time of GOSHD's first (partial-hang)
	// alarm; zero if none.
	FirstAlarmAt time.Duration
	// FullHangAt is the virtual time the last vCPU's alarm fired; zero if
	// the hang never became full.
	FullHangAt time.Duration
	// ProbeFailed records the external SSH probe's verdict.
	ProbeFailed bool
}

// DetectionLatency returns activation→first-alarm (partial-hang latency).
func (r *RunResult) DetectionLatency() (time.Duration, bool) {
	if r.FirstAlarmAt == 0 || r.ActivatedAt == 0 {
		return 0, false
	}
	return r.FirstAlarmAt - r.ActivatedAt, true
}

// FullHangLatency returns activation→all-vCPUs-alarmed.
func (r *RunResult) FullHangLatency() (time.Duration, bool) {
	if r.FullHangAt == 0 || r.ActivatedAt == 0 {
		return 0, false
	}
	return r.FullHangAt - r.ActivatedAt, true
}
