package runner

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"hypertap/internal/telemetry"
)

// TestResultsIndexedByUnit pins the core contract: results come back in
// unit order whatever the worker count, and each unit saw its own split
// seed and RNG stream.
func TestResultsIndexedByUnit(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		c := Campaign[string]{
			Units:    37,
			Parallel: workers,
			Seed:     11,
			Run: func(ctx *Ctx) (string, error) {
				return fmt.Sprintf("u%d/s%d/r%d", ctx.Index, ctx.Seed, ctx.RNG.Int63()), nil
			},
		}
		res, err := c.Execute()
		if err != nil {
			t.Fatal(err)
		}
		for i, got := range res.Units {
			want := fmt.Sprintf("u%d/s%d/r%d", i, UnitSeed(11, i), UnitRNG(11, i).Int63())
			if got != want {
				t.Fatalf("workers=%d unit %d: got %q want %q", workers, i, got, want)
			}
		}
	}
}

// TestFirstErrorPropagation pins the error contract: the lowest-indexed
// failing unit wins — the same error a serial run reports — and units after
// the failure are abandoned rather than started.
func TestFirstErrorPropagation(t *testing.T) {
	errLow := errors.New("unit 5 failed")
	errHigh := errors.New("unit 9 failed")
	var started atomic.Int64
	c := Campaign[int]{
		Units:    200,
		Parallel: 4,
		Run: func(ctx *Ctx) (int, error) {
			started.Add(1)
			switch ctx.Index {
			case 5:
				return 0, errLow
			case 9:
				return 0, errHigh
			}
			return ctx.Index, nil
		},
	}
	_, err := c.Execute()
	if !errors.Is(err, errLow) {
		t.Fatalf("got error %v, want lowest-index %v", err, errLow)
	}
	if n := started.Load(); n >= 200 {
		t.Fatalf("cancellation did not stop the campaign: all %d units started", n)
	}
}

// TestProgressSerialized drives a callback that mutates unsynchronized
// state from many workers; the race detector (make check runs this leg with
// -race) fails the build if deliveries ever interleave, and the sequence
// check pins that done counts every completion exactly once, in order.
func TestProgressSerialized(t *testing.T) {
	var seen []int // plain slice: any unserialized append is a race
	c := Campaign[struct{}]{
		Units:    500,
		Parallel: 8,
		Progress: func(done, total int) {
			if total != 500 {
				t.Errorf("total = %d, want 500", total)
			}
			seen = append(seen, done)
		},
		Run: func(ctx *Ctx) (struct{}, error) { return struct{}{}, nil },
	}
	if _, err := c.Execute(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 500 {
		t.Fatalf("progress delivered %d times, want 500", len(seen))
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress[%d] = %d, want %d", i, d, i+1)
		}
	}
}

// TestSeedSplitting is the property test for the seed + unitIndex
// discipline: across a sweep of campaign seeds, adjacent units must draw
// distinct streams (their first draws differ), and a unit's stream must be
// recomputable from (seed, index) alone.
func TestSeedSplitting(t *testing.T) {
	for seed := int64(-50); seed < 50; seed++ {
		for i := 0; i < 20; i++ {
			a, b := UnitRNG(seed, i).Int63(), UnitRNG(seed, i+1).Int63()
			if a == b {
				t.Fatalf("seed %d: units %d and %d share a first draw (%d)", seed, i, i+1, a)
			}
			if again := UnitRNG(seed, i).Int63(); again != a {
				t.Fatalf("seed %d unit %d: stream not reproducible (%d vs %d)", seed, i, a, again)
			}
		}
	}
}

// TestUnitIsolation pins in-campaign ≡ in-isolation: any single unit re-run
// through a one-unit view of the same work reproduces the result it
// produced inside the full campaign.
func TestUnitIsolation(t *testing.T) {
	work := func(ctx *Ctx) (int64, error) {
		// A unit result that depends on everything a unit receives.
		return ctx.Seed*1000003 ^ ctx.RNG.Int63(), nil
	}
	full := Campaign[int64]{Units: 64, Parallel: 4, Seed: 23, Run: work}
	res, err := full.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 13, 63} {
		ctx := &Ctx{Index: i, Seed: UnitSeed(23, i), RNG: UnitRNG(23, i)}
		alone, err := work(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if alone != res.Units[i] {
			t.Fatalf("unit %d: isolated run %d != in-campaign %d", i, alone, res.Units[i])
		}
	}
}

// TestTelemetryShardMerge pins that per-unit shards merge into a snapshot
// that is identical serial vs parallel, and that a live registry absorbs
// the same totals.
func TestTelemetryShardMerge(t *testing.T) {
	build := func(workers int, live *telemetry.Registry) *telemetry.Snapshot {
		c := Campaign[struct{}]{
			Units:     25,
			Parallel:  workers,
			Seed:      3,
			Telemetry: true,
			Live:      live,
			Run: func(ctx *Ctx) (struct{}, error) {
				ctx.Telemetry.Counter("units_total").Inc()
				ctx.Telemetry.Counter("draws_total", telemetry.L("unit", "all")).Add(uint64(ctx.Index))
				ctx.Telemetry.Gauge("high_water").Set(float64(ctx.Index))
				return struct{}{}, nil
			},
		}
		res, err := c.Execute()
		if err != nil {
			t.Fatal(err)
		}
		return res.Telemetry
	}

	serial := build(1, nil)
	live := telemetry.NewRegistry()
	parallel := build(4, live)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("merged telemetry differs:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	if n := serial.Counters[0].Value; n != 25 {
		t.Fatalf("units_total = %d, want 25", n)
	}
	ls := live.Snapshot()
	for _, c := range ls.Counters {
		if c.Name == "draws_total" && c.Value != 25*24/2 {
			t.Fatalf("live draws_total = %d, want %d", c.Value, 25*24/2)
		}
	}
	for _, g := range ls.Gauges {
		if g.Name == "high_water" && g.Value != 24 {
			t.Fatalf("live high_water = %v, want 24", g.Value)
		}
	}
}

// TestZeroUnits pins the degenerate cases.
func TestZeroUnits(t *testing.T) {
	c := Campaign[int]{Units: 0, Parallel: 4,
		Run: func(ctx *Ctx) (int, error) { return 0, nil }}
	res, err := c.Execute()
	if err != nil || len(res.Units) != 0 {
		t.Fatalf("empty campaign: res=%v err=%v", res, err)
	}
}
