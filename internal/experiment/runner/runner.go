// Package runner is the sharded campaign engine shared by every experiment
// harness: it executes independent, seed-derived work units on a worker
// pool and merges their results deterministically, so parallel campaign
// output is bit-identical to serial output at the same seed.
//
// The contract a harness buys into:
//
//   - A campaign is a fixed list of units, each a pure function of its
//     Ctx (index, split seed, private RNG stream, telemetry shard). Units
//     never share mutable state; each typically boots its own VM.
//   - Results come back indexed by unit, so the harness folds them in unit
//     order regardless of which worker finished first — the merge is the
//     same code path serial and parallel.
//   - Randomness is split per unit (seed + unit index), never threaded
//     through a campaign-wide stream, so any unit re-run in isolation
//     reproduces its in-campaign behavior.
//   - Progress callbacks are serialized by the engine: a harness's callback
//     never races with itself however many workers run.
//   - Telemetry is sharded: each unit records into its own registry and the
//     engine merges the per-unit snapshots in unit order (counters and
//     histograms sum, gauges keep their high-water mark), optionally
//     folding each completed shard into a live registry for /metrics.
package runner

import (
	"math/rand"
	"runtime"
	"sync"

	"hypertap/internal/telemetry"
)

// UnitSeed derives the private seed of one unit from the campaign seed.
// The discipline is seed + unitIndex: adjacent units get distinct RNG
// streams, and a unit's stream depends only on (campaign seed, index) — not
// on how many workers ran or what order they finished in.
func UnitSeed(seed int64, index int) int64 { return seed + int64(index) }

// UnitRNG builds the unit's private generator from its split seed.
func UnitRNG(seed int64, index int) *rand.Rand {
	return rand.New(rand.NewSource(UnitSeed(seed, index)))
}

// Ctx carries one unit's identity and private resources into its Run
// function.
type Ctx struct {
	// Index is the unit's position in the campaign's flattened unit list.
	Index int
	// Seed is UnitSeed(campaign seed, Index).
	Seed int64
	// RNG is the unit's private stream, seeded from Seed. Draws here never
	// perturb any other unit.
	RNG *rand.Rand
	// Telemetry is the unit's registry shard, non-nil iff the campaign
	// enabled telemetry. Pass it to the unit's VM/auditors; the engine
	// merges all shards after the run.
	Telemetry *telemetry.Registry
}

// Campaign describes a sharded run: Units independent work items executed
// by Run on up to Parallel workers.
type Campaign[R any] struct {
	// Units is the number of work items.
	Units int
	// Parallel is the worker count; 0 selects GOMAXPROCS. Results are
	// identical regardless of parallelism.
	Parallel int
	// Seed is the campaign seed; unit i receives UnitSeed(Seed, i).
	Seed int64
	// Run executes one unit. It must depend only on ctx (plus the
	// campaign's immutable configuration captured in the closure).
	Run func(ctx *Ctx) (R, error)
	// Progress, when set, is called after each unit completes. Calls are
	// serialized by the engine; done counts completed units. The callback
	// must not call back into the engine.
	Progress func(done, total int)
	// Telemetry enables per-unit registry shards (Ctx.Telemetry) and the
	// merged Result.Telemetry snapshot.
	Telemetry bool
	// Live, when set with Telemetry, receives each completed unit's shard
	// snapshot as it finishes (Registry.Absorb), so an HTTP exporter
	// serving Live sees campaign totals grow while the run is in flight.
	Live *telemetry.Registry
}

// Result is a completed campaign.
type Result[R any] struct {
	// Units holds every unit's result, indexed by unit.
	Units []R
	// Telemetry is the unit-order merge of all telemetry shards, present
	// iff the campaign enabled telemetry. Merging in unit order makes the
	// snapshot — series order included — independent of scheduling.
	Telemetry *telemetry.Snapshot
}

// Execute runs the campaign and returns results indexed by unit.
//
// Error semantics: the first error — "first" meaning lowest unit index, so
// the reported failure matches what a serial run would have hit — is
// returned after in-flight units finish; units not yet started are
// abandoned. Per-unit errors must themselves be deterministic functions of
// the unit for this to equal the serial error exactly.
func (c *Campaign[R]) Execute() (*Result[R], error) {
	n := c.Units
	if n < 0 {
		n = 0
	}
	workers := c.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]R, n)
	errs := make([]error, n)
	var shards []telemetry.Snapshot
	if c.Telemetry {
		shards = make([]telemetry.Snapshot, n)
	}

	var (
		mu     sync.Mutex // serializes progress delivery and Live absorption
		done   int
		next   int
		failed bool
		wg     sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if failed || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	finish := func(i int, shard *telemetry.Registry) {
		mu.Lock()
		defer mu.Unlock()
		if errs[i] != nil {
			failed = true
		}
		if shard != nil {
			shards[i] = shard.Snapshot()
			if c.Live != nil {
				c.Live.Absorb(shards[i])
			}
		}
		done++
		if c.Progress != nil {
			c.Progress(done, n)
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				ctx := &Ctx{Index: i, Seed: UnitSeed(c.Seed, i), RNG: UnitRNG(c.Seed, i)}
				if c.Telemetry {
					ctx.Telemetry = telemetry.NewRegistry()
				}
				results[i], errs[i] = c.Run(ctx)
				finish(i, ctx.Telemetry)
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Result[R]{Units: results}
	if c.Telemetry {
		var merged telemetry.Snapshot
		for i := range shards {
			merged.Merge(shards[i])
		}
		res.Telemetry = &merged
	}
	return res, nil
}

// Workers normalizes a parallelism setting: 0 or negative selects
// GOMAXPROCS. Harnesses use it to report the effective worker count.
func Workers(parallel int) int {
	if parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallel
}
