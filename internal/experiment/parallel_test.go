package experiment

import (
	"testing"
	"time"

	"hypertap/internal/inject"
)

func TestParallelCampaignMatchesSerial(t *testing.T) {
	sampleEvery := 48
	if testing.Short() {
		// The race-checked `make check` leg runs with -short: a handful of
		// fault sites still exercises the worker fan-out determinism.
		sampleEvery = 128
	}
	run := func(par int) *GOSHDResult {
		r, err := RunGOSHDCampaign(GOSHDConfig{
			SampleEvery:  sampleEvery,
			Workloads:    []string{"make -j2"},
			Kernels:      []bool{false},
			Persistences: []inject.Persistence{inject.Persistent},
			Seed:         7,
			Parallel:     par,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	start := time.Now()
	serial := run(1)
	serialTime := time.Since(start)
	start = time.Now()
	parallel := run(2)
	parTime := time.Since(start)
	t.Logf("serial %v, parallel(2) %v", serialTime.Round(time.Millisecond), parTime.Round(time.Millisecond))
	so, po := serial.Outcomes(), parallel.Outcomes()
	for _, o := range inject.AllOutcomes() {
		if so[o] != po[o] {
			t.Fatalf("outcome %v: serial %d vs parallel %d", o, so[o], po[o])
		}
	}
}
