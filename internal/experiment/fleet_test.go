package experiment

import (
	"reflect"
	"testing"
	"time"
)

// TestFleetCampaignParallelMatchesSerial extends the serial/parallel
// equivalence contract to units that are whole hosts: a campaign of N-VM
// hosts produces bit-identical reports at any worker count.
func TestFleetCampaignParallelMatchesSerial(t *testing.T) {
	cfg := FleetConfig{
		Hosts:      3,
		VMsPerHost: 2,
		Duration:   300 * time.Millisecond,
		Seed:       42,
	}

	serialCfg := cfg
	serialCfg.Parallel = 1
	serial, err := RunFleetCampaign(serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	parallelCfg := cfg
	parallelCfg.Parallel = 4
	parallel, err := RunFleetCampaign(parallelCfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("fleet campaign diverged across worker counts:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	if serial.TotalEvents == 0 {
		t.Fatal("campaign produced no events; equivalence is vacuous")
	}
	for i, hr := range serial.Hosts {
		if len(hr.VMs) != cfg.VMsPerHost {
			t.Fatalf("host %d reports %d VMs, want %d", i, len(hr.VMs), cfg.VMsPerHost)
		}
		for j, vm := range hr.VMs {
			if vm.Events == 0 || vm.Exits == 0 {
				t.Fatalf("host %d vm %d is silent: %+v", i, j, vm)
			}
			if vm.Seed != hr.Seed+int64(j) {
				t.Fatalf("host %d vm %d seed = %d, want unit seed %d + %d", i, j, vm.Seed, hr.Seed, j)
			}
		}
	}
	// Distinct unit seeds must yield distinct host histories.
	if reflect.DeepEqual(serial.Hosts[0].VMs, serial.Hosts[1].VMs) {
		t.Fatal("hosts 0 and 1 produced identical histories despite distinct seeds")
	}
}
