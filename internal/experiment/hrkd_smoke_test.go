package experiment

import "testing"

func TestHRKDMatrixSmoke(t *testing.T) {
	r, err := RunHRKDMatrix(HRKDConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatHRKD(r))
	if !r.AllDetected() {
		t.Fatal("not all rootkits detected")
	}
	for _, row := range r.Rows {
		if !row.HiddenFromPS {
			t.Errorf("%s did not hide from in-guest ps", row.Rootkit)
		}
	}
}
