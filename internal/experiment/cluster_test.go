package experiment

import (
	"reflect"
	"testing"
	"time"

	"hypertap/internal/telemetry"
)

// clusterCampaignConfig keeps the campaign equivalence test fast while still
// crossing every layer: 3 clusters × 2 hosts × 2 VMs with a live migration
// mid-run in every unit.
func clusterCampaignConfig(parallel int) ClusterConfig {
	return ClusterConfig{
		Clusters:        3,
		HostsPerCluster: 2,
		VMsPerHost:      2,
		Duration:        200 * time.Millisecond,
		Threshold:       30 * time.Millisecond,
		Seed:            77,
		Parallel:        parallel,
		MigrateAt:       100 * time.Millisecond,
	}
}

// TestClusterCampaignParallelMatchesSerial pins the campaign determinism
// contract one level up from the fleet campaign: the unit is a whole cluster
// (shared clock, migration and all), and running units serially or across
// workers yields byte-identical reports.
func TestClusterCampaignParallelMatchesSerial(t *testing.T) {
	serial, err := RunClusterCampaign(clusterCampaignConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunClusterCampaign(clusterCampaignConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel cluster campaign diverged from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
	if serial.TotalEvents == 0 {
		t.Fatal("campaign produced no events; the equivalence is vacuous")
	}
	if serial.TotalMigrations != 3 {
		t.Fatalf("campaign completed %d migrations, want one per unit (3)", serial.TotalMigrations)
	}
	if serial.TotalAlarms == 0 {
		t.Fatal("campaign raised no GOSHD alarms; the napper slot is not engaging")
	}
	// Every unit's migration moved a VM: host 0 ends one short, host 1 one
	// long.
	for _, ur := range serial.Clusters {
		if len(ur.Hosts[0].VMs) != 1 || len(ur.Hosts[1].VMs) != 3 {
			t.Fatalf("unit %s residency = %d/%d VMs, want 1/3", ur.Cluster, len(ur.Hosts[0].VMs), len(ur.Hosts[1].VMs))
		}
	}
}

// TestClusterCampaignTelemetryRollsUp checks the campaign's fleet rollup:
// per-host series from every unit land in the live registry under their
// {host=cU-hI} labels.
func TestClusterCampaignTelemetryRollsUp(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := clusterCampaignConfig(2)
	cfg.Telemetry = reg
	res, err := RunClusterCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, cs := range reg.Snapshot().Counters {
		if cs.Name != "hypertap_events_published_total" {
			continue
		}
		// Count only the host-total series (host label, no vm label).
		hosted, perVM := false, false
		for _, l := range cs.Labels {
			hosted = hosted || l.Key == "host"
			perVM = perVM || l.Key == "vm"
		}
		if hosted && !perVM {
			total += cs.Value
		}
	}
	if total != res.TotalEvents {
		t.Fatalf("rolled-up published total = %d, want %d", total, res.TotalEvents)
	}
}
