package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"hypertap/internal/auditors/ped"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/experiment/runner"
	"hypertap/internal/guest"
	"hypertap/internal/hv"
	"hypertap/internal/malware"
	"hypertap/internal/vmi"
)

// The three-Ninjas experiments of §VIII-C: the /proc side channel
// (Table III), the passive-monitoring attack demonstrations (Fig. 6), and
// the O-Ninja / H-Ninja / HT-Ninja detection-probability showdown.

// oNinjaPerEntry is the effective per-process checking cost of the in-guest
// Ninja daemon (stat + rule evaluation + scheduling), calibrated so the
// baseline 31-process scan cycle lands near the paper's observed regime.
const oNinjaPerEntry = 1200 * time.Microsecond

// attackInstallTime is the escalation→hidden visibility window of the
// rootkit-combined attack (the paper's ~4ms measured attack).
const attackInstallTime = 4 * time.Millisecond

// newPEDVM boots a VM with optional HyperTap monitoring.
func newPEDVM(seed int64, monitored bool) (*hv.Machine, *intercept.Engine, error) {
	m, err := hv.New(hv.Config{
		VCPUs:    2,
		MemBytes: 64 << 20,
		Guest:    guest.Config{Seed: seed},
	})
	if err != nil {
		return nil, nil, err
	}
	var engine *intercept.Engine
	if monitored {
		engine, err = m.EnableMonitoring(intercept.Features{
			ProcessSwitch: true,
			ThreadSwitch:  true,
			Syscalls:      true,
		})
		if err != nil {
			return nil, nil, err
		}
	}
	if err := m.Boot(); err != nil {
		return nil, nil, err
	}
	return m, engine, nil
}

// spawnUnderShell creates an unprivileged login shell and spawns the attack
// as its child — the paper's attacks run from a user's terminal, and Ninja's
// rule keys on the parent's (non-magic) uid.
func spawnUnderShell(m *hv.Machine, spec *guest.ProcSpec) error {
	shell, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "bash", UID: 1000,
		Program: &guest.LoopProgram{Body: []guest.Step{guest.Sleep(time.Second)}},
	}, nil)
	if err != nil {
		return err
	}
	_, err = m.Kernel().CreateProcess(spec, shell)
	return err
}

// addFillers spawns benign daemons until the guest's task list shows about
// target entries (the paper's 31-process baseline and the spamming attack's
// filler population).
func addFillers(m *hv.Machine, target int) error {
	have := m.Kernel().LiveTaskCount()
	for i := 0; have+i < target; i++ {
		if _, err := m.Kernel().CreateProcess(malware.IdleSpammer(i), nil); err != nil {
			return err
		}
	}
	return nil
}

// SideChannelRow is one Table III row.
type SideChannelRow struct {
	Nominal time.Duration
	Samples int
	Mean    time.Duration
	Min     time.Duration
	Max     time.Duration
	SD      time.Duration
}

// SideChannelConfig parameterizes the Table III measurement.
type SideChannelConfig struct {
	// Intervals are the nominal O-Ninja checking intervals to measure
	// (default: the paper's 1/2/4/8 seconds).
	Intervals []time.Duration
	// Samples per interval (paper: 30).
	Samples int
	// Seed drives guest jitter; interval i runs at seed+i.
	Seed int64
	// Parallel is the number of intervals measured concurrently (each in
	// its own VM). 0 selects GOMAXPROCS.
	Parallel int
	// Progress, when set, is called after each interval completes.
	Progress func(done, total int)
}

// RunSideChannelTable reproduces Table III: an unprivileged observer
// measures O-Ninja's checking interval through /proc/PID/stat. One work
// unit per interval.
func RunSideChannelTable(cfg SideChannelConfig) ([]SideChannelRow, error) {
	if len(cfg.Intervals) == 0 {
		cfg.Intervals = []time.Duration{time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second}
	}
	if cfg.Samples <= 0 {
		cfg.Samples = 30
	}
	campaign := runner.Campaign[SideChannelRow]{
		Units:    len(cfg.Intervals),
		Parallel: cfg.Parallel,
		Seed:     cfg.Seed,
		Progress: cfg.Progress,
		Run: func(ctx *runner.Ctx) (SideChannelRow, error) {
			interval := cfg.Intervals[ctx.Index]
			m, _, err := newPEDVM(ctx.Seed, false)
			if err != nil {
				return SideChannelRow{}, err
			}
			oninja := &ped.ONinja{
				Policy:       ped.DefaultPolicy(),
				Interval:     interval,
				PerEntryCost: 150 * time.Microsecond,
			}
			ninjaTask, err := m.Kernel().CreateProcess(oninja.Spec(), nil)
			if err != nil {
				return SideChannelRow{}, err
			}
			sc := &malware.SideChannel{TargetPID: ninjaTask.PID, Samples: cfg.Samples}
			if _, err := m.Kernel().CreateProcess(sc.Spec(), nil); err != nil {
				return SideChannelRow{}, err
			}
			budget := time.Duration(cfg.Samples+4)*(interval+50*time.Millisecond) + 2*time.Second
			m.RunUntil(budget, sc.Done)
			measured := sc.Intervals()
			if len(measured) == 0 {
				return SideChannelRow{}, fmt.Errorf("experiment: side channel measured nothing at interval %v", interval)
			}
			return summarizeDurations(interval, measured), nil
		},
	}
	res, err := campaign.Execute()
	if err != nil {
		return nil, err
	}
	return res.Units, nil
}

func summarizeDurations(nominal time.Duration, ds []time.Duration) SideChannelRow {
	row := SideChannelRow{Nominal: nominal, Samples: len(ds), Min: ds[0], Max: ds[0]}
	var sum float64
	for _, d := range ds {
		sum += float64(d)
		if d < row.Min {
			row.Min = d
		}
		if d > row.Max {
			row.Max = d
		}
	}
	mean := sum / float64(len(ds))
	row.Mean = time.Duration(mean)
	var varSum float64
	for _, d := range ds {
		diff := float64(d) - mean
		varSum += diff * diff
	}
	row.SD = time.Duration(math.Sqrt(varSum / float64(len(ds))))
	return row
}

// FormatSideChannel renders Table III.
func FormatSideChannel(rows []SideChannelRow) string {
	var b strings.Builder
	b.WriteString("Table III: predicting Ninja's monitoring interval via /proc (seconds)\n")
	fmt.Fprintf(&b, "%-10s %-10s %-10s %-10s %-10s %-8s\n", "Interval", "Predicted", "Min", "Max", "SD", "Samples")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10.0f %-10.5f %-10.5f %-10.5f %-10.5f %-8d\n",
			r.Nominal.Seconds(), r.Mean.Seconds(), r.Min.Seconds(), r.Max.Seconds(), r.SD.Seconds(), r.Samples)
	}
	return b.String()
}

// DemoRow is one attack-vs-monitor demonstration (Fig. 6 and §VIII-C1).
type DemoRow struct {
	Attack  string `json:"attack"`
	Monitor string `json:"monitor"`
	// ActionDone reports whether the unauthorized operation completed.
	ActionDone bool `json:"action_done"`
	// Detected reports the monitor's verdict.
	Detected bool `json:"detected"`
	// Expected is the paper's qualitative expectation, for the harness to
	// assert against.
	Expected bool `json:"expected"`
}

// RunPassiveAttackDemos reproduces the qualitative attack matrix: which
// attack defeats which monitor, per §VIII-C.
func RunPassiveAttackDemos(seed int64) ([]DemoRow, error) {
	var rows []DemoRow

	// 1. Persistent escalation vs polling O-Ninja: caught (the control).
	{
		m, _, err := newPEDVM(seed, false)
		if err != nil {
			return nil, err
		}
		oninja := &ped.ONinja{Policy: ped.DefaultPolicy(), Interval: 200 * time.Millisecond,
			PerEntryCost: 150 * time.Microsecond}
		if _, err := m.Kernel().CreateProcess(oninja.Spec(), nil); err != nil {
			return nil, err
		}
		logRec := &malware.AttackLog{}
		att := &malware.TransientAttack{Log: logRec, Linger: 3 * time.Second}
		if err := spawnUnderShell(m, att.Spec("attack")); err != nil {
			return nil, err
		}
		m.Run(3 * time.Second)
		rows = append(rows, DemoRow{
			Attack: "persistent escalation", Monitor: "O-Ninja (200ms)",
			ActionDone: logRec.Acted(), Detected: oninja.Detected(), Expected: true,
		})
	}

	// 2. Transient attack vs polling O-Ninja: escapes (Fig. 6 top).
	{
		m, _, err := newPEDVM(seed+1, false)
		if err != nil {
			return nil, err
		}
		oninja := &ped.ONinja{Policy: ped.DefaultPolicy(), Interval: time.Second,
			PerEntryCost: 150 * time.Microsecond}
		if _, err := m.Kernel().CreateProcess(oninja.Spec(), nil); err != nil {
			return nil, err
		}
		m.Run(1200 * time.Millisecond) // let a scan pass; attack lands in the sleep window
		logRec := &malware.AttackLog{}
		att := &malware.TransientAttack{Log: logRec}
		if err := spawnUnderShell(m, att.Spec("attack")); err != nil {
			return nil, err
		}
		m.Run(3 * time.Second)
		rows = append(rows, DemoRow{
			Attack: "transient attack", Monitor: "O-Ninja (1s)",
			ActionDone: logRec.Acted(), Detected: oninja.Detected(), Expected: false,
		})
	}

	// 3. Rootkit-combined attack vs O-Ninja and H-Ninja: escapes both.
	{
		m, _, err := newPEDVM(seed+2, false)
		if err != nil {
			return nil, err
		}
		oninja := &ped.ONinja{Policy: ped.DefaultPolicy(), Interval: 50 * time.Millisecond,
			PerEntryCost: 150 * time.Microsecond}
		if _, err := m.Kernel().CreateProcess(oninja.Spec(), nil); err != nil {
			return nil, err
		}
		intro := vmi.New(m, m.Kernel().Symbols())
		hninja := &ped.HNinja{Policy: ped.DefaultPolicy(), Intro: intro, Clock: m.Clock(),
			Interval: 50 * time.Millisecond, Blocking: true}
		if err := hninja.Start(); err != nil {
			return nil, err
		}
		m.Run(500 * time.Millisecond)
		logRec := &malware.AttackLog{}
		att := &malware.RootkitAttack{
			Log:         logRec,
			Rootkit:     &malware.Rootkit{RkName: "ivyl", Techniques: malware.TechDKOM | malware.TechHijack},
			InstallTime: 2 * time.Millisecond, // hide fast, then linger hidden
			Linger:      5 * time.Second,
		}
		if err := spawnUnderShell(m, att.Spec("attack")); err != nil {
			return nil, err
		}
		m.Run(4 * time.Second)
		rows = append(rows,
			DemoRow{Attack: "rootkit-combined", Monitor: "O-Ninja (50ms)",
				ActionDone: logRec.Acted(), Detected: oninja.Detected(), Expected: false},
			DemoRow{Attack: "rootkit-combined", Monitor: "H-Ninja (50ms)",
				ActionDone: logRec.Acted(), Detected: hninja.Detected(), Expected: false},
		)
	}

	// 4. Spamming vs non-blocking and blocking H-Ninja: the non-blocking
	// scan can be outrun; the blocking scan cannot (§V-C, §VIII-C1).
	for _, blocking := range []bool{false, true} {
		m, _, err := newPEDVM(seed+3, false)
		if err != nil {
			return nil, err
		}
		if err := addFillers(m, 120); err != nil {
			return nil, err
		}
		intro := vmi.New(m, m.Kernel().Symbols())
		hninja := &ped.HNinja{Policy: ped.DefaultPolicy(), Intro: intro, Clock: m.Clock(),
			Interval: 40 * time.Millisecond, Blocking: blocking,
			PerEntryCost: 500 * time.Microsecond}
		if err := hninja.Start(); err != nil {
			return nil, err
		}
		m.Run(300 * time.Millisecond)
		// The attack outlives the polling interval (a blocking snapshot
		// must land on it) but ends before the spam-stretched linear scan
		// reaches its late /proc position (~120 entries × 500µs).
		logRec := &malware.AttackLog{}
		att := &malware.TransientAttack{Log: logRec, Linger: 45 * time.Millisecond}
		if err := spawnUnderShell(m, att.Spec("attack")); err != nil {
			return nil, err
		}
		m.Run(2 * time.Second)
		name := "H-Ninja non-blocking (40ms, spammed)"
		expected := false
		if blocking {
			name = "H-Ninja blocking (40ms, spammed)"
			expected = true
		}
		rows = append(rows, DemoRow{
			Attack: "spamming + escalation", Monitor: name,
			ActionDone: logRec.Acted(), Detected: hninja.Detected(), Expected: expected,
		})
	}

	// 5. Every attack vs HT-Ninja: all caught, before the damage.
	attacks := []struct {
		name  string
		build func(logRec *malware.AttackLog) *guest.ProcSpec
	}{
		{"transient attack", func(l *malware.AttackLog) *guest.ProcSpec {
			return (&malware.TransientAttack{Log: l}).Spec("attack")
		}},
		{"rootkit-combined", func(l *malware.AttackLog) *guest.ProcSpec {
			return (&malware.RootkitAttack{Log: l,
				Rootkit:     &malware.Rootkit{RkName: "suckit", Techniques: malware.TechKmem | malware.TechDKOM},
				InstallTime: time.Millisecond}).Spec("attack")
		}},
		{"spamming + escalation", func(l *malware.AttackLog) *guest.ProcSpec {
			return (&malware.TransientAttack{Log: l}).Spec("attack")
		}},
	}
	for i, att := range attacks {
		m, _, err := newPEDVM(seed+10+int64(i), true)
		if err != nil {
			return nil, err
		}
		intro := vmi.New(m, m.Kernel().Symbols())
		htn, err := ped.NewHTNinja(ped.HTNinjaConfig{Policy: ped.DefaultPolicy(), View: m, Intro: intro})
		if err != nil {
			return nil, err
		}
		if err := m.EM().Register(htn, core.DeliverSync, 0); err != nil {
			return nil, err
		}
		if att.name == "spamming + escalation" {
			if err := addFillers(m, 200); err != nil {
				return nil, err
			}
		}
		m.Run(200 * time.Millisecond)
		logRec := &malware.AttackLog{}
		if err := spawnUnderShell(m, att.build(logRec)); err != nil {
			return nil, err
		}
		m.Run(2 * time.Second)
		rows = append(rows, DemoRow{
			Attack: att.name, Monitor: "HT-Ninja",
			ActionDone: logRec.Acted(), Detected: htn.Detected(), Expected: true,
		})
	}
	return rows, nil
}

// FormatDemos renders the attack demonstration matrix.
func FormatDemos(rows []DemoRow) string {
	var b strings.Builder
	b.WriteString("Attacks vs monitors (Fig. 6 / §VIII-C):\n")
	fmt.Fprintf(&b, "%-24s %-38s %-8s %-9s %-9s\n", "attack", "monitor", "acted", "detected", "expected")
	for _, r := range rows {
		mark := ""
		if r.Detected != r.Expected {
			mark = "  <-- MISMATCH vs paper"
		}
		fmt.Fprintf(&b, "%-24s %-38s %-8v %-9v %-9v%s\n",
			r.Attack, r.Monitor, r.ActionDone, r.Detected, r.Expected, mark)
	}
	return b.String()
}

// ShowdownCell is one detection-probability measurement of §VIII-C2.
type ShowdownCell struct {
	Monitor string
	// Param describes the cell (idle-process count or polling interval).
	Param    string
	Reps     int
	Detected int
}

// Probability returns the detection rate.
func (c ShowdownCell) Probability() float64 {
	if c.Reps == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Reps)
}

// ShowdownConfig parameterizes the detection-probability study.
type ShowdownConfig struct {
	// Reps is the attack repetitions per cell (paper: 300).
	Reps int
	// ONinjaSpam are the idle-process counts for the O-Ninja cells
	// (0 reproduces the 31-process baseline).
	ONinjaSpam []int
	// HNinjaIntervals are the polling intervals for the H-Ninja cells.
	HNinjaIntervals []time.Duration
	Seed            int64
	// Parallel is the number of attack reps run concurrently (each in its
	// own VM). 0 selects GOMAXPROCS.
	Parallel int
	// Progress, when set, is called after each rep. Delivery is
	// serialized by the campaign engine.
	Progress func(done, total int)
}

func (c *ShowdownConfig) fillDefaults() {
	if c.Reps <= 0 {
		c.Reps = 300
	}
	if len(c.ONinjaSpam) == 0 {
		c.ONinjaSpam = []int{0, 100, 200}
	}
	if len(c.HNinjaIntervals) == 0 {
		c.HNinjaIntervals = []time.Duration{4 * time.Millisecond, 8 * time.Millisecond, 20 * time.Millisecond}
	}
}

// baselineProcs is the paper's 31-process baseline population.
const baselineProcs = 31

// showdownCellSpec describes one showdown cell before its reps run.
type showdownCellSpec struct {
	monitor string
	param   string
	// run executes one rep of the cell's attack.
	run func(seed int64, rng *rand.Rand) (bool, error)
}

// showdownCells expands the config into cell specs, in output order.
func showdownCells(cfg ShowdownConfig) []showdownCellSpec {
	var specs []showdownCellSpec
	for _, spam := range cfg.ONinjaSpam {
		spam := spam
		specs = append(specs, showdownCellSpec{
			monitor: "O-Ninja (0s interval)",
			param:   fmt.Sprintf("%d idle procs", spam),
			run: func(seed int64, rng *rand.Rand) (bool, error) {
				return oneONinjaRep(seed, spam, rng)
			},
		})
	}
	for _, interval := range cfg.HNinjaIntervals {
		interval := interval
		specs = append(specs, showdownCellSpec{
			monitor: "H-Ninja",
			param:   fmt.Sprintf("%v interval", interval),
			run: func(seed int64, rng *rand.Rand) (bool, error) {
				return oneHNinjaRep(seed, interval, rng)
			},
		})
	}
	specs = append(specs, showdownCellSpec{
		monitor: "HT-Ninja",
		param:   "active",
		run:     oneHTNinjaRep,
	})
	return specs
}

// RunNinjaShowdown measures detection probabilities for the three Ninjas
// against the repeated rootkit-combined attack (§VIII-C2). One work unit
// per (cell, rep): every rep draws its attack phase from its own split RNG
// stream, so any rep reproduces in isolation.
func RunNinjaShowdown(cfg ShowdownConfig) ([]ShowdownCell, error) {
	cfg.fillDefaults()
	specs := showdownCells(cfg)
	campaign := runner.Campaign[bool]{
		Units:    cfg.Reps * len(specs),
		Parallel: cfg.Parallel,
		Seed:     cfg.Seed,
		Progress: cfg.Progress,
		Run: func(ctx *runner.Ctx) (bool, error) {
			return specs[ctx.Index/cfg.Reps].run(ctx.Seed, ctx.RNG)
		},
	}
	res, err := campaign.Execute()
	if err != nil {
		return nil, err
	}
	cells := make([]ShowdownCell, len(specs))
	for i, spec := range specs {
		cells[i] = ShowdownCell{Monitor: spec.monitor, Param: spec.param, Reps: cfg.Reps}
		for rep := 0; rep < cfg.Reps; rep++ {
			if res.Units[i*cfg.Reps+rep] {
				cells[i].Detected++
			}
		}
	}
	return cells, nil
}

// oneONinjaRep runs one rootkit-combined attack against continuous O-Ninja.
func oneONinjaRep(seed int64, spam int, rng *rand.Rand) (bool, error) {
	m, _, err := newPEDVM(seed, false)
	if err != nil {
		return false, err
	}
	if err := addFillers(m, baselineProcs+spam); err != nil {
		return false, err
	}
	// The attacker is a long-lived process (the user's shell of the paper's
	// attack): present in every scan snapshot. Only its *escalated* state
	// is transient — visible for the ~4ms between the exploit and the
	// rootkit taking effect. It escalates at a random phase of the scan
	// cycle after a warm-up, then stays hidden.
	procs := baselineProcs + spam
	cycle := time.Duration(procs) * oNinjaPerEntry
	logRec := &malware.AttackLog{}
	att := &malware.RootkitAttack{
		Log:         logRec,
		Rootkit:     &malware.Rootkit{RkName: "ivyl", Techniques: malware.TechDKOM | malware.TechHijack},
		Delay:       2*cycle + time.Duration(rng.Int63n(int64(cycle))),
		InstallTime: attackInstallTime,
		Linger:      time.Hour,
	}
	if err := spawnUnderShell(m, att.Spec("attack")); err != nil {
		return false, err
	}
	oninja := &ped.ONinja{Policy: ped.DefaultPolicy(), Interval: 0, PerEntryCost: oNinjaPerEntry}
	if _, err := m.Kernel().CreateProcess(oninja.Spec(), nil); err != nil {
		return false, err
	}
	m.RunUntil(8*cycle+2*time.Second, logRec.Hidden)
	m.Run(2*cycle + 50*time.Millisecond) // let in-flight scans complete
	return oninja.Detected(), nil
}

// oneHNinjaRep runs one rootkit-combined attack against polling H-Ninja.
func oneHNinjaRep(seed int64, interval time.Duration, rng *rand.Rand) (bool, error) {
	m, _, err := newPEDVM(seed, false)
	if err != nil {
		return false, err
	}
	intro := vmi.New(m, m.Kernel().Symbols())
	hninja := &ped.HNinja{Policy: ped.DefaultPolicy(), Intro: intro, Clock: m.Clock(),
		Interval: interval, Blocking: true}
	if err := hninja.Start(); err != nil {
		return false, err
	}
	m.Run(20 * time.Millisecond)
	logRec := &malware.AttackLog{}
	att := &malware.RootkitAttack{
		Log:         logRec,
		Rootkit:     &malware.Rootkit{RkName: "suckit", Techniques: malware.TechKmem | malware.TechDKOM},
		Delay:       time.Duration(rng.Int63n(int64(interval + time.Millisecond))),
		InstallTime: attackInstallTime,
	}
	if err := spawnUnderShell(m, att.Spec("attack")); err != nil {
		return false, err
	}
	m.RunUntil(time.Second, logRec.Exited)
	m.Run(2 * interval)
	return hninja.Detected(), nil
}

// oneHTNinjaRep runs the same attack against HT-Ninja.
func oneHTNinjaRep(seed int64, rng *rand.Rand) (bool, error) {
	m, _, err := newPEDVM(seed, true)
	if err != nil {
		return false, err
	}
	intro := vmi.New(m, m.Kernel().Symbols())
	htn, err := ped.NewHTNinja(ped.HTNinjaConfig{Policy: ped.DefaultPolicy(), View: m, Intro: intro})
	if err != nil {
		return false, err
	}
	if err := m.EM().Register(htn, core.DeliverSync, 0); err != nil {
		return false, err
	}
	m.Run(20 * time.Millisecond)
	logRec := &malware.AttackLog{}
	att := &malware.RootkitAttack{
		Log:         logRec,
		Rootkit:     &malware.Rootkit{RkName: "phalanx", Techniques: malware.TechKmem | malware.TechDKOM},
		Delay:       time.Duration(rng.Int63n(int64(10 * time.Millisecond))),
		InstallTime: attackInstallTime,
	}
	if err := spawnUnderShell(m, att.Spec("attack")); err != nil {
		return false, err
	}
	m.RunUntil(time.Second, logRec.Exited)
	return htn.Detected(), nil
}

// FormatShowdown renders the §VIII-C2 detection probabilities.
func FormatShowdown(cells []ShowdownCell) string {
	var b strings.Builder
	b.WriteString("Detection probability vs the rootkit-combined attack (§VIII-C):\n")
	fmt.Fprintf(&b, "%-26s %-18s %8s %10s %12s\n", "monitor", "parameter", "reps", "detected", "probability")
	for _, c := range cells {
		fmt.Fprintf(&b, "%-26s %-18s %8d %10d %11.1f%%\n",
			c.Monitor, c.Param, c.Reps, c.Detected, 100*c.Probability())
	}
	return b.String()
}
