package experiment

import (
	"fmt"
	"time"

	"hypertap/internal/auditors/goshd"
	"hypertap/internal/cluster"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/experiment/runner"
	"hypertap/internal/guest"
	"hypertap/internal/host"
	"hypertap/internal/telemetry"
)

// ClusterConfig parameterizes the cluster campaign: the sharded unit is not
// one VM or one host but an entire M-host *cluster* — the datacenter plane
// with its shared clock, central health aggregator and live migration. Seeds
// nest the same way the topology does: unit u gets runner.UnitSeed(Seed, u),
// host i within it runner.UnitSeed(unitSeed, i), and VM j under that
// runner.UnitSeed(hostSeed, j) — so every guest's stream is a pure function
// of (campaign seed, unit, host, VM) and serial and parallel execution are
// byte-identical.
type ClusterConfig struct {
	// Clusters is the number of campaign units (default 2).
	Clusters int
	// HostsPerCluster sizes each unit's datacenter (default 2).
	HostsPerCluster int
	// VMsPerHost sizes each host's fleet (default 2).
	VMsPerHost int
	// Duration is each cluster's virtual run length (default 1s).
	Duration time.Duration
	// Threshold is GOSHD's per-VM alarm threshold (default 100ms).
	Threshold time.Duration
	// Seed is the campaign seed.
	Seed int64
	// Parallel is the worker count; 0 selects GOMAXPROCS. Results are
	// identical regardless of parallelism.
	Parallel int
	// Progress, when set, is called after each cluster completes.
	Progress func(done, total int)
	// Telemetry, when set, receives the fleet-wide rollup: each unit's
	// per-host series arrive under {host=cU-hI} labels as units finish.
	Telemetry *telemetry.Registry
	// FlightDepth sizes every host's flight-recorder rings.
	FlightDepth int
	// MigrateAt, when positive, live-migrates each unit's last VM of host 0
	// to host 1 at that virtual time — mid-campaign churn exercising the
	// migration plane under the determinism contract.
	MigrateAt time.Duration
}

func (c *ClusterConfig) fillDefaults() {
	if c.Clusters <= 0 {
		c.Clusters = 2
	}
	if c.HostsPerCluster <= 0 {
		c.HostsPerCluster = 2
	}
	if c.VMsPerHost <= 0 {
		c.VMsPerHost = 2
	}
	if c.Duration == 0 {
		c.Duration = time.Second
	}
	if c.Threshold == 0 {
		c.Threshold = 100 * time.Millisecond
	}
}

// ClusterHostReport is one host's outcome within its cluster, listing the
// VMs resident at campaign end (migration moves them).
type ClusterHostReport struct {
	Host   string          `json:"host"`
	Seed   int64           `json:"seed"`
	VMs    []FleetVMReport `json:"vms"`
	Events uint64          `json:"events"`
}

// ClusterUnitReport is one whole cluster's outcome.
type ClusterUnitReport struct {
	Cluster    string              `json:"cluster"`
	Seed       int64               `json:"seed"`
	Hosts      []ClusterHostReport `json:"hosts"`
	Events     uint64              `json:"events"`
	Migrations int                 `json:"migrations"`
}

// ClusterResult is the whole campaign.
type ClusterResult struct {
	Clusters        []ClusterUnitReport `json:"clusters"`
	TotalEvents     uint64              `json:"total_events"`
	TotalAlarms     int                 `json:"total_alarms"`
	TotalMigrations int                 `json:"total_migrations"`
}

// runClusterUnit executes one campaign unit: an M-host cluster with per-VM
// GOSHD auditors and, when configured, one live migration mid-run.
func runClusterUnit(cfg *ClusterConfig, ctx *runner.Ctx) (ClusterUnitReport, error) {
	feat := intercept.Features{
		ProcessSwitch: true, ThreadSwitch: true, TSSIntegrity: true,
		Syscalls: true, IO: true,
	}
	hostSeeds := make([]int64, cfg.HostsPerCluster)
	vmSeeds := make(map[string]int64)
	specs := make([]cluster.HostSpec, cfg.HostsPerCluster)
	for i := range specs {
		hostSeeds[i] = runner.UnitSeed(ctx.Seed, i)
		hostName := fmt.Sprintf("c%d-h%d", ctx.Index, i)
		vms := make([]host.VMSpec, cfg.VMsPerHost)
		for j := range vms {
			name := fmt.Sprintf("%s-vm%d", hostName, j)
			vmSeeds[name] = runner.UnitSeed(hostSeeds[i], j)
			vms[j] = host.VMSpec{
				Name:    name,
				Guest:   guest.Config{Seed: vmSeeds[name]},
				Monitor: true, Features: feat,
			}
		}
		specs[i] = cluster.HostSpec{Name: hostName, VMs: vms}
	}
	cl, err := cluster.New(cluster.Config{
		Hosts:       specs,
		Telemetry:   ctx.Telemetry,
		FlightDepth: cfg.FlightDepth,
	})
	if err != nil {
		return ClusterUnitReport{}, err
	}
	// Per-VM GOSHD, registered host-major in VM order so every host's actor
	// table is reproducible.
	dets := make(map[string]*goshd.Detector)
	for i := 0; i < cfg.HostsPerCluster; i++ {
		for j := 0; j < cfg.VMsPerHost; j++ {
			m := cl.Host(i).Machine(j)
			det, derr := goshd.New(goshd.Config{
				VM:        m.VMID(),
				Clock:     m.Clock(),
				VCPUs:     m.NumVCPUs(),
				Threshold: cfg.Threshold,
			})
			if derr != nil {
				return ClusterUnitReport{}, derr
			}
			if rerr := cl.Host(i).EM().RegisterAuditor(det, core.DeliverAsync, 0); rerr != nil {
				return ClusterUnitReport{}, rerr
			}
			dets[m.Name()] = det
		}
	}
	if err := cl.Boot(); err != nil {
		return ClusterUnitReport{}, err
	}
	for i := 0; i < cfg.HostsPerCluster; i++ {
		for j := 0; j < cfg.VMsPerHost; j++ {
			m := cl.Host(i).Machine(j)
			dets[m.Name()].Start()
			if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
				Comm: fmt.Sprintf("w%d", j), UID: 1000,
				Program: &guest.LoopProgram{Body: fleetUnitWorkload(i*cfg.VMsPerHost + j)},
			}, nil); err != nil {
				return ClusterUnitReport{}, err
			}
		}
	}
	if cfg.MigrateAt > 0 && cfg.HostsPerCluster > 1 {
		mover := cl.Host(0).Machine(cfg.VMsPerHost - 1).Name()
		cl.ScheduleMigration(cfg.MigrateAt, mover, specs[1].Name)
	}
	cl.Run(cfg.Duration)
	if fails := cl.Failures(); len(fails) > 0 {
		return ClusterUnitReport{}, fails[0]
	}

	report := ClusterUnitReport{
		Cluster:    fmt.Sprintf("cluster%d", ctx.Index),
		Seed:       ctx.Seed,
		Migrations: len(cl.Migrations()),
	}
	for i := 0; i < cfg.HostsPerCluster; i++ {
		h := cl.Host(i)
		hr := ClusterHostReport{Host: h.Name(), Seed: hostSeeds[i]}
		for _, m := range h.Machines() {
			st := m.Kernel().Stats()
			vm := FleetVMReport{
				Name:     m.Name(),
				Seed:     vmSeeds[m.Name()],
				Events:   h.EM().PublishedVM(m.VMID()),
				Syscalls: st.Syscalls,
				Switches: st.ContextSwitches,
				Exits:    m.TotalExits(),
				Alarms:   len(dets[m.Name()].Alarms()),
			}
			hr.VMs = append(hr.VMs, vm)
			hr.Events += vm.Events
		}
		report.Hosts = append(report.Hosts, hr)
		report.Events += hr.Events
	}
	return report, nil
}

// RunClusterCampaign executes the cluster campaign on the sharded engine:
// clusters are independent units, so the campaign parallelizes across
// datacenters while each cluster's internal schedule — hosts, migrations,
// verdicts and all — stays the deterministic round-robin the equivalence
// gates pin.
func RunClusterCampaign(cfg ClusterConfig) (*ClusterResult, error) {
	cfg.fillDefaults()
	campaign := runner.Campaign[ClusterUnitReport]{
		Units:     cfg.Clusters,
		Parallel:  cfg.Parallel,
		Seed:      cfg.Seed,
		Progress:  cfg.Progress,
		Telemetry: cfg.Telemetry != nil,
		Live:      cfg.Telemetry,
		Run: func(ctx *runner.Ctx) (ClusterUnitReport, error) {
			return runClusterUnit(&cfg, ctx)
		},
	}
	res, err := campaign.Execute()
	if err != nil {
		return nil, err
	}
	out := &ClusterResult{Clusters: res.Units}
	for _, ur := range res.Units {
		out.TotalEvents += ur.Events
		out.TotalMigrations += ur.Migrations
		for _, hr := range ur.Hosts {
			for _, vm := range hr.VMs {
				out.TotalAlarms += vm.Alarms
			}
		}
	}
	return out, nil
}
