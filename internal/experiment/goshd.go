// Package experiment implements one harness per table and figure of the
// paper's evaluation (§VIII and §IX), regenerating the reported rows and
// series on the simulated substrate. Each harness is deterministic given its
// seed; cmd/ tools run them at paper scale and the bench suite at reduced
// scale.
package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hypertap/internal/auditors/goshd"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/experiment/runner"
	"hypertap/internal/guest"
	"hypertap/internal/hv"
	"hypertap/internal/inject"
	"hypertap/internal/telemetry"
	"hypertap/internal/workload"
)

// GOSHDConfig parameterizes the Fig. 4 / Fig. 5 fault-injection campaign.
type GOSHDConfig struct {
	// SampleEvery selects every n-th fault site (1 = all 374, the paper's
	// full campaign).
	SampleEvery int
	// Workloads are the campaign workloads (default: the paper's four).
	Workloads []string
	// Kernels selects the preemption configurations (default: both).
	Kernels []bool
	// Persistences selects fault activation semantics (default: both).
	Persistences []inject.Persistence
	// Threshold is GOSHD's alarm threshold (default 4s, the paper's 2×
	// profiled maximum timeslice).
	Threshold time.Duration
	// Exposure bounds the wait for fault activation (default 15s).
	Exposure time.Duration
	// Runway bounds the wait for a first alarm after activation
	// (default 12s).
	Runway time.Duration
	// Observe bounds the partial→full propagation window after the first
	// alarm (default 30s; compresses the paper's 10-minute watch).
	Observe time.Duration
	// Seed drives workload jitter.
	Seed int64
	// Parallel is the number of injection runs executed concurrently
	// (each in its own VM). 0 selects GOMAXPROCS. Results are
	// deterministic regardless of parallelism: every run is an
	// independent machine keyed by its own seed.
	Parallel int
	// Progress, when set, is called after each run. Delivery is
	// serialized by the campaign engine.
	Progress func(done, total int)
	// Telemetry, when set, instruments the campaign: every run's VM
	// records into its own registry shard, each completed shard is
	// absorbed into this live registry (so the -telemetry-addr endpoint
	// shows campaign totals growing mid-run), and the result carries the
	// deterministic unit-order merge of all shards. Counters and
	// histograms are campaign totals; gauges are campaign high-water
	// marks.
	Telemetry *telemetry.Registry
}

func (c *GOSHDConfig) fillDefaults() {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 1
	}
	if len(c.Workloads) == 0 {
		c.Workloads = workload.CampaignWorkloadNames()
	}
	if len(c.Kernels) == 0 {
		c.Kernels = []bool{false, true}
	}
	if len(c.Persistences) == 0 {
		c.Persistences = []inject.Persistence{inject.Transient, inject.Persistent}
	}
	if c.Threshold == 0 {
		c.Threshold = 4 * time.Second
	}
	if c.Exposure == 0 {
		c.Exposure = 15 * time.Second
	}
	if c.Runway == 0 {
		c.Runway = 12 * time.Second
	}
	if c.Observe == 0 {
		c.Observe = 30 * time.Second
	}
}

// GOSHDCell identifies one bar of Fig. 4.
type GOSHDCell struct {
	Workload    string
	Preemptible bool
	Persistence inject.Persistence
}

func (c GOSHDCell) String() string {
	kernel := "non-preempt"
	if c.Preemptible {
		kernel = "preempt"
	}
	return fmt.Sprintf("%s/%s/%s", c.Workload, kernel, c.Persistence)
}

// GOSHDCellStats aggregates one cell's outcomes and latencies.
type GOSHDCellStats struct {
	Counts         map[inject.Outcome]int
	FirstLatencies []time.Duration
	FullLatencies  []time.Duration
}

// GOSHDResult is the whole campaign.
type GOSHDResult struct {
	Cells map[GOSHDCell]*GOSHDCellStats
	Runs  int
	Sites int
	// Telemetry is the campaign-wide metrics snapshot, present when
	// GOSHDConfig.Telemetry was set.
	Telemetry *telemetry.Snapshot
}

// Outcomes sums outcome counts across cells.
func (r *GOSHDResult) Outcomes() map[inject.Outcome]int {
	total := make(map[inject.Outcome]int)
	for _, cs := range r.Cells {
		for o, n := range cs.Counts {
			total[o] += n
		}
	}
	return total
}

// Coverage returns detected/manifested — the paper's headline 99.8%.
func (r *GOSHDResult) Coverage() float64 {
	t := r.Outcomes()
	manifested := t[inject.NotDetected] + t[inject.PartialHang] + t[inject.FullHang]
	if manifested == 0 {
		return 0
	}
	return float64(t[inject.PartialHang]+t[inject.FullHang]) / float64(manifested)
}

// PartialHangShare returns partial hangs / manifested hangs.
func (r *GOSHDResult) PartialHangShare() float64 {
	t := r.Outcomes()
	hangs := t[inject.PartialHang] + t[inject.FullHang]
	if hangs == 0 {
		return 0
	}
	return float64(t[inject.PartialHang]) / float64(hangs)
}

// AllFirstLatencies returns every first-alarm latency (Fig. 5 blue series).
func (r *GOSHDResult) AllFirstLatencies() []time.Duration {
	var out []time.Duration
	for _, cs := range r.Cells {
		out = append(out, cs.FirstLatencies...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AllFullLatencies returns every full-hang latency (Fig. 5 red series).
func (r *GOSHDResult) AllFullLatencies() []time.Duration {
	var out []time.Duration
	for _, cs := range r.Cells {
		out = append(out, cs.FullLatencies...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RunGOSHDCampaign executes the Fig. 4 campaign.
func RunGOSHDCampaign(cfg GOSHDConfig) (*GOSHDResult, error) {
	cfg.fillDefaults()

	// Enumerate sites from a scratch kernel.
	sites, err := enumerateSites()
	if err != nil {
		return nil, err
	}
	var selected []guest.SiteInfo
	for i, s := range sites {
		if i%cfg.SampleEvery == 0 {
			selected = append(selected, s)
		}
	}

	result := &GOSHDResult{Cells: make(map[GOSHDCell]*GOSHDCellStats), Sites: len(selected)}

	// Build the full run list, then execute it on the shared campaign
	// engine: every run is an independent VM, so parallelism changes only
	// wall time. The per-run seed stays keyed by fault site (not unit
	// index) — it predates the engine and pins the committed Fig. 4/5
	// tables; it satisfies the same discipline, since each unit's
	// randomness is a pure function of the campaign seed and the unit's
	// own identity.
	type job struct {
		cell GOSHDCell
		cfg  InjectionConfig
	}
	var jobs []job
	for _, preempt := range cfg.Kernels {
		for _, persistence := range cfg.Persistences {
			for _, wl := range cfg.Workloads {
				cell := GOSHDCell{Workload: wl, Preemptible: preempt, Persistence: persistence}
				result.Cells[cell] = &GOSHDCellStats{Counts: make(map[inject.Outcome]int)}
				for _, site := range selected {
					jobs = append(jobs, job{cell: cell, cfg: InjectionConfig{
						Workload:    wl,
						Preemptible: preempt,
						Fault:       inject.Fault{Site: site.ID, Persistence: persistence},
						Threshold:   cfg.Threshold,
						Exposure:    cfg.Exposure,
						Runway:      cfg.Runway,
						Observe:     cfg.Observe,
						Seed:        cfg.Seed + int64(site.ID),
					}})
				}
			}
		}
	}

	campaign := runner.Campaign[inject.RunResult]{
		Units:     len(jobs),
		Parallel:  cfg.Parallel,
		Seed:      cfg.Seed,
		Progress:  cfg.Progress,
		Telemetry: cfg.Telemetry != nil,
		Live:      cfg.Telemetry,
		Run: func(ctx *runner.Ctx) (inject.RunResult, error) {
			j := jobs[ctx.Index]
			j.cfg.Telemetry = ctx.Telemetry
			rr, err := RunInjection(j.cfg)
			if err != nil {
				return rr, fmt.Errorf("experiment: injection %v at site %d: %w",
					j.cell, j.cfg.Fault.Site, err)
			}
			return rr, nil
		},
	}
	res, err := campaign.Execute()
	if err != nil {
		return nil, err
	}
	for i, rr := range res.Units {
		stats := result.Cells[jobs[i].cell]
		stats.Counts[rr.Outcome]++
		if lat, ok := rr.DetectionLatency(); ok {
			stats.FirstLatencies = append(stats.FirstLatencies, lat)
		}
		if lat, ok := rr.FullHangLatency(); ok {
			stats.FullLatencies = append(stats.FullLatencies, lat)
		}
		result.Runs++
	}
	result.Telemetry = res.Telemetry
	return result, nil
}

// enumerateSites boots a throwaway kernel to read the site table.
func enumerateSites() ([]guest.SiteInfo, error) {
	m, err := hv.New(hv.Config{VCPUs: 1, MemBytes: 64 << 20})
	if err != nil {
		return nil, err
	}
	return m.Kernel().Sites(), nil
}

// InjectionConfig parameterizes one injection run.
type InjectionConfig struct {
	Workload    string
	Preemptible bool
	Fault       inject.Fault
	Threshold   time.Duration
	Exposure    time.Duration
	Runway      time.Duration
	Observe     time.Duration
	Seed        int64
	// Telemetry, when set, instruments the run's VM and GOSHD detector.
	Telemetry *telemetry.Registry
}

// RunInjection boots a clean 2-vCPU VM with GOSHD attached, starts the
// workload and the external SSH probe, injects the fault, and classifies
// the outcome per the paper's taxonomy.
func RunInjection(cfg InjectionConfig) (inject.RunResult, error) {
	m, err := hv.New(hv.Config{
		VCPUs:     2,
		MemBytes:  64 << 20,
		Guest:     guest.Config{Preemptible: cfg.Preemptible, Seed: cfg.Seed},
		Telemetry: cfg.Telemetry,
	})
	if err != nil {
		return inject.RunResult{}, err
	}
	if _, err := m.EnableMonitoring(intercept.Features{
		ProcessSwitch: true,
		ThreadSwitch:  true,
	}); err != nil {
		return inject.RunResult{}, err
	}
	det, err := goshd.New(goshd.Config{
		Clock:     m.Clock(),
		VCPUs:     m.NumVCPUs(),
		Threshold: cfg.Threshold,
	})
	if err != nil {
		return inject.RunResult{}, err
	}
	if cfg.Telemetry != nil {
		det.EnableTelemetry(cfg.Telemetry)
	}
	// GOSHD is non-blocking (the paper's default auditing mode).
	if err := m.EM().Register(det, core.DeliverAsync, 0); err != nil {
		return inject.RunResult{}, err
	}
	if err := m.Boot(); err != nil {
		return inject.RunResult{}, err
	}

	// Guest services and workload.
	if _, err := m.Kernel().CreateProcess(workload.SSHD(), nil); err != nil {
		return inject.RunResult{}, err
	}
	procs, err := workload.CampaignProcs(cfg.Workload)
	if err != nil {
		return inject.RunResult{}, err
	}
	for _, p := range procs {
		if _, err := m.Kernel().CreateProcess(p, nil); err != nil {
			return inject.RunResult{}, err
		}
	}
	// HTTP load generation, when the workload needs it.
	if hint := workload.CampaignLoad(cfg.Workload); hint != nil {
		var pump func(now time.Duration)
		seq := uint64(0)
		pump = func(now time.Duration) {
			seq++
			m.InjectNetRequest(hint.Port, seq)
			m.Clock().AfterFunc(hint.Interval, pump)
		}
		m.Clock().AfterFunc(hint.Interval, pump)
	}

	probe := newSSHProbe(m)
	probe.start()

	// Warm-up, then arm the watchdogs and the fault.
	m.Run(2 * time.Second)
	det.Start()
	plan, err := inject.NewPlan(cfg.Fault, m.Clock().Now)
	if err != nil {
		return inject.RunResult{}, err
	}
	m.Kernel().SetFaultPlan(plan)

	// Phase 1: wait for the faulty location to execute.
	m.RunUntil(cfg.Exposure, func() bool { probe.drain(); return plan.Executed() })
	rr := inject.RunResult{Fault: cfg.Fault}
	if !plan.Executed() {
		rr.Outcome = inject.NotActivated
		return rr, nil
	}
	rr.ActivatedAt = plan.ActivatedAt()

	// Phase 2: wait for a first alarm.
	m.RunUntil(cfg.Runway, func() bool { probe.drain(); return len(det.Alarms()) > 0 })

	// Phase 3: watch propagation or let the probe time out.
	if len(det.Alarms()) > 0 {
		m.RunUntil(cfg.Observe, func() bool { probe.drain(); return det.FullHang() })
	} else {
		m.RunUntil(probeTimeout+2*time.Second, func() bool { probe.drain(); return probe.failed() })
	}
	probe.drain()

	alarms := det.Alarms()
	rr.ProbeFailed = probe.failed()
	switch {
	case len(alarms) > 0:
		rr.FirstAlarmAt = alarms[0].At
		if det.FullHang() {
			rr.Outcome = inject.FullHang
			last := alarms[0].At
			for _, a := range alarms {
				if a.At > last {
					last = a.At
				}
			}
			rr.FullHangAt = last
		} else {
			rr.Outcome = inject.PartialHang
		}
	case rr.ProbeFailed:
		rr.Outcome = inject.NotDetected
	default:
		rr.Outcome = inject.NotManifested
	}
	return rr, nil
}

// probeTimeout is the SSH probe's liveness deadline.
const probeTimeout = 6 * time.Second

// sshProbe plays the paper's external probe: it pings the guest sshd every
// second and declares the VM failed after probeTimeout of silence. It is
// the *ground-truth labeler* the paper used — and, as the paper found, it
// can be fooled by hangs confined to sshd itself (the Not Detected cases).
type sshProbe struct {
	m           *hv.Machine
	sent        uint64
	lastReplyAt time.Duration
	everReplied bool
	hasFailed   bool
}

func newSSHProbe(m *hv.Machine) *sshProbe {
	return &sshProbe{m: m}
}

func (p *sshProbe) start() {
	var ping func(now time.Duration)
	ping = func(now time.Duration) {
		p.sent++
		p.m.InjectNetRequest(workload.SSHDPort, p.sent)
		p.m.Clock().AfterFunc(time.Second, ping)
	}
	p.m.Clock().AfterFunc(time.Second, ping)
}

// drain consumes replies and updates the liveness verdict.
func (p *sshProbe) drain() {
	for _, reply := range p.m.Kernel().DrainNetReplies() {
		if reply.Port == workload.SSHDPort {
			p.lastReplyAt = reply.At
			p.everReplied = true
		}
	}
	if p.everReplied && p.m.Clock().Now()-p.lastReplyAt > probeTimeout {
		p.hasFailed = true
	}
}

func (p *sshProbe) failed() bool { return p.hasFailed }

// FormatGOSHD renders the campaign as a Fig. 4-style table.
func FormatGOSHD(r *GOSHDResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "GOSHD fault-injection campaign: %d sites, %d runs\n", r.Sites, r.Runs)
	fmt.Fprintf(&b, "%-34s %13s %14s %12s %12s %9s\n",
		"cell", "Not Activated", "Not Manifested", "Not Detected", "Partial Hang", "Full Hang")

	cells := make([]GOSHDCell, 0, len(r.Cells))
	for c := range r.Cells {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].String() < cells[j].String() })
	for _, c := range cells {
		cs := r.Cells[c]
		fmt.Fprintf(&b, "%-34s %13d %14d %12d %12d %9d\n", c.String(),
			cs.Counts[inject.NotActivated], cs.Counts[inject.NotManifested],
			cs.Counts[inject.NotDetected], cs.Counts[inject.PartialHang],
			cs.Counts[inject.FullHang])
	}
	t := r.Outcomes()
	manifested := t[inject.NotDetected] + t[inject.PartialHang] + t[inject.FullHang]
	activated := manifested + t[inject.NotManifested]
	fmt.Fprintf(&b, "\nactivated faults that manifested as hangs: %.1f%%\n",
		pct(manifested, activated))
	fmt.Fprintf(&b, "hang detection coverage: %.1f%% (paper: 99.8%%)\n", 100*r.Coverage())
	fmt.Fprintf(&b, "partial hangs among manifested hangs: %.1f%% (paper: 18-26%%)\n",
		100*r.PartialHangShare())
	return b.String()
}

// CDF computes evenly spaced CDF points over sorted latencies for Fig. 5.
func CDF(latencies []time.Duration, at []time.Duration) []float64 {
	sorted := make([]time.Duration, len(latencies))
	copy(sorted, latencies)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]float64, len(at))
	for i, t := range at {
		n := sort.Search(len(sorted), func(j int) bool { return sorted[j] > t })
		if len(sorted) > 0 {
			out[i] = float64(n) / float64(len(sorted))
		}
	}
	return out
}

// FormatLatencyCDF renders Fig. 5's two series.
func FormatLatencyCDF(r *GOSHDResult) string {
	marks := []time.Duration{
		4 * time.Second, 6 * time.Second, 8 * time.Second, 12 * time.Second,
		16 * time.Second, 24 * time.Second, 32 * time.Second,
	}
	first := r.AllFirstLatencies()
	full := r.AllFullLatencies()
	firstCDF := CDF(first, marks)
	fullCDF := CDF(full, marks)
	var b strings.Builder
	fmt.Fprintf(&b, "GOSHD detection latency CDF (n_first=%d, n_full=%d)\n", len(first), len(full))
	fmt.Fprintf(&b, "%-10s %18s %18s\n", "latency", "first-hang CDF", "full-hang CDF")
	for i, mark := range marks {
		fmt.Fprintf(&b, "%-10v %17.1f%% %17.1f%%\n", mark, 100*firstCDF[i], 100*fullCDF[i])
	}
	return b.String()
}

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}
