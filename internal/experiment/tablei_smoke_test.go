package experiment

import "testing"

func TestTableISmoke(t *testing.T) {
	rows, err := RunTableI(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatTableI(rows))
	for _, r := range rows {
		if r.Observed == 0 {
			t.Errorf("row %q observed no events", r.Event)
		}
	}
}
