package experiment

import "testing"

func TestPerfSmoke(t *testing.T) {
	r, err := RunPerfOverhead(PerfConfig{Scale: 1, Seed: 2, IncludeAblation: !testing.Short()})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatPerf(r))
}
