package experiment

import (
	"fmt"
	"strings"
	"time"

	"hypertap/internal/auditors/hrkd"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/experiment/runner"
	"hypertap/internal/guest"
	"hypertap/internal/hv"
	"hypertap/internal/malware"
	"hypertap/internal/vmi"
)

// HRKDRow is one Table II row: a real-world rootkit evaluated against HRKD.
type HRKDRow struct {
	// Rootkit and TargetOS reproduce the table's identity columns.
	Rootkit  string `json:"rootkit"`
	TargetOS string `json:"target_os"`
	// Techniques is the hiding-technique column.
	Techniques string `json:"techniques"`
	// HiddenFromPS reports whether the in-guest process listing (Task
	// Manager / ps) lost sight of the malware.
	HiddenFromPS bool `json:"hidden_from_ps"`
	// HiddenFromVMI reports whether the hypervisor-side VMI list walk lost
	// sight of it (DKOM-family rootkits).
	HiddenFromVMI bool `json:"hidden_from_vmi"`
	// Detected reports HRKD's cross-view verdict.
	Detected bool `json:"detected"`
	// HiddenPIDs are the pids HRKD surfaced.
	HiddenPIDs []int `json:"hidden_pids,omitempty"`
}

// HRKDResult is the Table II reproduction.
type HRKDResult struct {
	Rows []HRKDRow
}

// AllDetected reports the paper's headline: every rootkit detected.
func (r *HRKDResult) AllDetected() bool {
	if len(r.Rows) == 0 {
		return false
	}
	for _, row := range r.Rows {
		if !row.Detected {
			return false
		}
	}
	return true
}

// HRKDConfig parameterizes the Table II matrix.
type HRKDConfig struct {
	// Seed drives guest jitter; rootkit i runs at seed+i.
	Seed int64
	// Parallel is the number of rootkit evaluations run concurrently
	// (each in its own VM). 0 selects GOMAXPROCS.
	Parallel int
	// Progress, when set, is called after each rootkit completes.
	Progress func(done, total int)
}

// RunHRKDMatrix evaluates every catalog rootkit (Table II): boot a guest of
// the rootkit's OS profile, run hidden malware, install the rootkit, and
// cross-validate HRKD's architectural views against the in-guest and VMI
// listings. One work unit per rootkit.
func RunHRKDMatrix(cfg HRKDConfig) (*HRKDResult, error) {
	catalog := malware.Catalog()
	campaign := runner.Campaign[HRKDRow]{
		Units:    len(catalog),
		Parallel: cfg.Parallel,
		Seed:     cfg.Seed,
		Progress: cfg.Progress,
		Run: func(ctx *runner.Ctx) (HRKDRow, error) {
			entry := catalog[ctx.Index]
			row, err := RunHRKDOnce(entry, ctx.Seed)
			if err != nil {
				return HRKDRow{}, fmt.Errorf("experiment: HRKD vs %s: %w", entry.Name, err)
			}
			return *row, nil
		},
	}
	res, err := campaign.Execute()
	if err != nil {
		return nil, err
	}
	return &HRKDResult{Rows: res.Units}, nil
}

// RunHRKDOnce evaluates one rootkit.
func RunHRKDOnce(entry malware.CatalogEntry, seed int64) (*HRKDRow, error) {
	m, err := hv.New(hv.Config{
		VCPUs:    2,
		MemBytes: 64 << 20,
		Guest:    guest.Config{Profile: entry.Profile, Seed: seed},
	})
	if err != nil {
		return nil, err
	}
	engine, err := m.EnableMonitoring(intercept.Features{
		ProcessSwitch: true,
		ThreadSwitch:  true,
		TSSIntegrity:  true,
	})
	if err != nil {
		return nil, err
	}
	if err := m.Boot(); err != nil {
		return nil, err
	}
	intro := vmi.New(m, m.Kernel().Symbols())
	det, err := hrkd.New(hrkd.Config{View: m, Counter: engine, Intro: intro})
	if err != nil {
		return nil, err
	}
	if err := m.EM().Register(det, core.DeliverAsync, 0); err != nil {
		return nil, err
	}

	// The malware: two processes that keep using the CPU, which is all
	// HRKD needs to see them.
	for i := 0; i < 2; i++ {
		if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
			Comm: "malware", UID: 0,
			Program: &guest.LoopProgram{Body: []guest.Step{
				guest.Compute(time.Millisecond),
				guest.DoSyscall(guest.SysWrite, 1, 128),
				guest.Sleep(3 * time.Millisecond),
			}},
		}, nil); err != nil {
			return nil, err
		}
	}
	m.Run(50 * time.Millisecond)

	// Root loads the rootkit, hiding every "malware" process.
	rk := entry.Build("malware")
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "dropper", UID: 0,
		Program: guest.NewStepList(guest.LoadModule(rk)),
	}, nil); err != nil {
		return nil, err
	}
	m.Run(100 * time.Millisecond)

	// View 1: the in-guest listing (what Task Manager / ps shows).
	psView, err := guestPS(m)
	if err != nil {
		return nil, err
	}
	// View 2: the hypervisor VMI walk.
	vmiView, err := intro.ListProcesses()
	if err != nil {
		return nil, err
	}

	row := &HRKDRow{
		Rootkit:       entry.Name,
		TargetOS:      entry.TargetOS,
		Techniques:    entry.Techniques.String(),
		HiddenFromPS:  !viewShows(psView, "malware"),
		HiddenFromVMI: !viewShows(vmiView, "malware"),
	}

	// HRKD cross-validates its architectural (CPU-derived) view against
	// the weaker of the untrusted views — the in-guest one, as the paper's
	// Task Manager comparison does.
	report := det.CrossCheckAgainst(psView)
	row.Detected = report.Detected()
	for _, f := range report.Hidden {
		row.HiddenPIDs = append(row.HiddenPIDs, f.PID)
	}
	return row, nil
}

// guestPS runs an in-guest "ps": a process calling listprocs through the
// (possibly hijacked) syscall table.
func guestPS(m *hv.Machine) ([]guest.ProcEntry, error) {
	var view []guest.ProcEntry
	got := false
	prog := guest.ProgramFunc(func(ctx *guest.ProgContext) guest.Step {
		if ctx.StepIndex == 0 {
			return guest.DoSyscall(guest.SysListProcs)
		}
		if !got && ctx.LastResult != nil {
			if entries, ok := ctx.LastResult.Data.([]guest.ProcEntry); ok {
				view = entries
				got = true
			}
		}
		return guest.Exit(0)
	})
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{Comm: "ps", UID: 0, Program: prog}, nil); err != nil {
		return nil, err
	}
	m.RunUntil(200*time.Millisecond, func() bool { return got })
	if !got {
		return nil, fmt.Errorf("experiment: in-guest ps never completed")
	}
	return view, nil
}

func viewShows(view []guest.ProcEntry, comm string) bool {
	for _, e := range view {
		if e.Comm == comm && e.State != guest.StateZombie {
			return true
		}
	}
	return false
}

// FormatHRKD renders Table II.
func FormatHRKD(r *HRKDResult) string {
	var b strings.Builder
	b.WriteString("Table II: real-world rootkits evaluated with HRKD\n")
	fmt.Fprintf(&b, "%-16s %-18s %-28s %-10s %-10s %-9s\n",
		"Rootkit", "Target OS", "Hiding Technique(s)", "hidden:ps", "hidden:vmi", "detected")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %-18s %-28s %-10v %-10v %-9v\n",
			row.Rootkit, row.TargetOS, row.Techniques,
			row.HiddenFromPS, row.HiddenFromVMI, row.Detected)
	}
	if r.AllDetected() {
		b.WriteString("\nall rootkits detected (matches the paper)\n")
	} else {
		b.WriteString("\nWARNING: some rootkits were NOT detected\n")
	}
	return b.String()
}
