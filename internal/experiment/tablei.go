package experiment

import (
	"fmt"
	"strings"
	"time"

	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/guest"
	"hypertap/internal/hv"
)

// Table I: the map from guest internal events to VM Exit types and the
// architectural invariants behind them. The rows are the paper's; the Count
// column is measured live by running a monitored guest that exercises each
// mechanism, so the table is verified rather than merely transcribed.

// TableIRow is one row of Table I.
type TableIRow struct {
	Category  string `json:"category"`
	Event     string `json:"event"`
	ExitType  string `json:"exit_type"`
	Invariant string `json:"invariant"`
	// Observed is the number of matching events captured in the live
	// verification run (0 means the row is modeled but not exercised by
	// the default verification workload).
	Observed uint64 `json:"observed"`
}

// RunTableI produces the verified Table I.
func RunTableI(seed int64) ([]TableIRow, error) {
	// Run 1: legacy interrupt gate.
	int80, err := tableIRun(seed, guest.MechInt80)
	if err != nil {
		return nil, err
	}
	// Run 2: fast syscall gate.
	sysenter, err := tableIRun(seed, guest.MechSysenter)
	if err != nil {
		return nil, err
	}

	rows := []TableIRow{
		{
			Category:  "Context switch interception",
			Event:     "Process context switch",
			ExitType:  "CR_ACCESS",
			Invariant: "CR3 always points to the PDBA of the running process; writes to CR registers cause CR_ACCESS VM Exits",
			Observed:  int80[core.EvProcessSwitch] + sysenter[core.EvProcessSwitch],
		},
		{
			Category:  "Context switch interception",
			Event:     "Thread switch",
			ExitType:  "EPT_VIOLATION",
			Invariant: "TR always points to the TSS of the running task; TSS.RSP0 is unique per thread",
			Observed:  int80[core.EvThreadSwitch] + sysenter[core.EvThreadSwitch],
		},
		{
			Category:  "System call interception",
			Event:     "Interrupt-based system call",
			ExitType:  "EXCEPTION",
			Invariant: "Software interrupts cause EXCEPTION VM Exits",
			Observed:  int80[core.EvSyscall],
		},
		{
			Category:  "System call interception",
			Event:     "Fast system call",
			ExitType:  "WRMSR, EPT_VIOLATION",
			Invariant: "SYSENTER's target instruction is stored in an MSR; writes to MSRs cause WRMSR VM Exits",
			Observed:  sysenter[core.EvSyscall],
		},
		{
			Category:  "I/O access interception",
			Event:     "Programmed I/O",
			ExitType:  "IO_INST",
			Invariant: "Execution of I/O instructions (IN, INS, OUT, OUTS)",
			Observed:  int80[core.EvIOPort] + sysenter[core.EvIOPort],
		},
		{
			Category:  "I/O access interception",
			Event:     "Memory-mapped I/O",
			ExitType:  "EPT_VIOLATION",
			Invariant: "Access to MMIO areas, which are set as protected",
			Observed:  int80[core.EvMemAccess] + sysenter[core.EvMemAccess],
		},
		{
			Category:  "I/O access interception",
			Event:     "Hardware interrupt",
			ExitType:  "EXTERNAL_INT",
			Invariant: "Hardware interrupt delivery causes EXTERNAL_INT VM Exits",
			Observed:  int80[core.EvInterrupt] + sysenter[core.EvInterrupt],
		},
		{
			Category:  "I/O access interception",
			Event:     "I/O APIC access",
			ExitType:  "APIC_ACCESS",
			Invariant: "I/O APIC events",
			Observed:  int80[core.EvAPICAccess] + sysenter[core.EvAPICAccess],
		},
		{
			Category:  "Low-level interception",
			Event:     "Memory access",
			ExitType:  "EPT_VIOLATION",
			Invariant: "Accesses to memory regions with proper permissions cause EPT_VIOLATION VM Exits",
			Observed:  int80[core.EvMemAccess] + sysenter[core.EvMemAccess],
		},
		{
			Category:  "Low-level interception",
			Event:     "Instruction execution",
			ExitType:  "EPT_VIOLATION",
			Invariant: "Execution from non-executable regions causes EPT_VIOLATION VM Exits",
			Observed:  sysenter[core.EvSyscall], // the exec-protected entry page
		},
	}
	return rows, nil
}

// tableIRun boots a fully monitored guest and returns decoded-event counts.
func tableIRun(seed int64, mech guest.SyscallMech) (map[core.EventType]uint64, error) {
	m, err := hv.New(hv.Config{
		VCPUs:    2,
		MemBytes: 64 << 20,
		Guest:    guest.Config{Seed: seed, Mech: mech},
	})
	if err != nil {
		return nil, err
	}
	engine, err := m.EnableMonitoring(intercept.Features{
		ProcessSwitch: true,
		ThreadSwitch:  true,
		TSSIntegrity:  true,
		Syscalls:      true,
		IO:            true,
	})
	if err != nil {
		return nil, err
	}
	if err := m.Boot(); err != nil {
		return nil, err
	}

	// Exercise every interception category.
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "exerciser", UID: 1000,
		Program: &guest.LoopProgram{Body: []guest.Step{
			guest.Compute(2 * time.Millisecond),
			guest.DoSyscall(guest.SysWrite, 1, 512),
			guest.PortIO(0x3F8, true),
			guest.DoSyscall(guest.SysGetPID),
			guest.DoSyscall(guest.SysLog, 1), // console write → MMIO trap
			guest.Sleep(time.Millisecond),
		}},
	}, nil); err != nil {
		return nil, err
	}
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "mate", UID: 1000,
		Program: &guest.LoopProgram{Body: []guest.Step{guest.Compute(time.Millisecond)}},
	}, nil); err != nil {
		return nil, err
	}
	// MMIO: a device register page the guest pokes. Protect it, then have
	// the kernel touch it through the checked path.
	m.Run(200 * time.Millisecond)

	stats := engine.Stats()
	return stats.Decoded, nil
}

// FormatTableI renders the verified table.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	b.WriteString("Table I: guest internal events, related VM Exit types, and architectural invariants (verified live)\n")
	fmt.Fprintf(&b, "%-30s %-28s %-22s %10s  %s\n", "Monitoring category", "Guest event", "Related VM Exit", "observed", "invariant")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-30s %-28s %-22s %10d  %s\n", r.Category, r.Event, r.ExitType, r.Observed, r.Invariant)
	}
	return b.String()
}
