package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"hypertap/internal/inject"
)

var update = flag.Bool("update", false, "rewrite the golden files in testdata/ from the current output")

// The golden-regression suite pins the rendered experiment tables at reduced
// scale and a fixed seed. Every harness is a pure function of its seed on
// virtual time, so these byte-for-byte diffs catch any unintended change to
// simulation behavior, aggregation, or formatting. After an *intended*
// change, regenerate with:
//
//	go test ./internal/experiment -run TestGolden -update
//
// and review the golden diffs like any other code change.
func goldenCases() []struct {
	name string
	gen  func(t *testing.T) string
} {
	return []struct {
		name string
		gen  func(t *testing.T) string
	}{
		{"goshd", func(t *testing.T) string {
			r, err := RunGOSHDCampaign(GOSHDConfig{
				SampleEvery:  96,
				Workloads:    []string{"make -j2"},
				Kernels:      []bool{false},
				Persistences: []inject.Persistence{inject.Persistent, inject.Transient},
				Seed:         7,
				Parallel:     4,
			})
			if err != nil {
				t.Fatal(err)
			}
			return FormatGOSHD(r) + "\n" + FormatLatencyCDF(r)
		}},
		{"hrkd", func(t *testing.T) string {
			r, err := RunHRKDMatrix(HRKDConfig{Seed: 5, Parallel: 4})
			if err != nil {
				t.Fatal(err)
			}
			return FormatHRKD(r)
		}},
		{"showdown", func(t *testing.T) string {
			cells, err := RunNinjaShowdown(ShowdownConfig{
				Reps:            8,
				ONinjaSpam:      []int{0, 100},
				HNinjaIntervals: []time.Duration{8 * time.Millisecond, 64 * time.Millisecond},
				Seed:            3,
				Parallel:        4,
			})
			if err != nil {
				t.Fatal(err)
			}
			return FormatShowdown(cells)
		}},
		{"side_channel", func(t *testing.T) string {
			rows, err := RunSideChannelTable(SideChannelConfig{
				Intervals: []time.Duration{500 * time.Millisecond, time.Second},
				Samples:   8,
				Seed:      5,
				Parallel:  4,
			})
			if err != nil {
				t.Fatal(err)
			}
			return FormatSideChannel(rows)
		}},
		{"sweeps", func(t *testing.T) string {
			cfg := SweepConfig{Reps: 6, Seed: 9, Parallel: 4}
			h, err := RunHNinjaIntervalSweep(
				[]time.Duration{4 * time.Millisecond, 16 * time.Millisecond, 64 * time.Millisecond}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			o, err := RunONinjaSpamSweep([]int{0, 50, 200}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return FormatSweep("H-Ninja interval sweep", h) + "\n" +
				FormatSweep("O-Ninja spam sweep", o)
		}},
		{"perf", func(t *testing.T) string {
			r, err := RunPerfOverhead(PerfConfig{Scale: 1, Seed: 2, Parallel: 4})
			if err != nil {
				t.Fatal(err)
			}
			return FormatPerf(r)
		}},
		{"tablei", func(t *testing.T) string {
			rows, err := RunTableI(1)
			if err != nil {
				t.Fatal(err)
			}
			return FormatTableI(rows)
		}},
		{"demos", func(t *testing.T) string {
			rows, err := RunPassiveAttackDemos(7)
			if err != nil {
				t.Fatal(err)
			}
			return FormatDemos(rows)
		}},
	}
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			got := tc.gen(t)
			path := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
