package experiment

import (
	"fmt"
	"strings"
	"time"

	"hypertap/internal/auditors/goshd"
	"hypertap/internal/auditors/hrkd"
	"hypertap/internal/auditors/ped"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/experiment/runner"
	"hypertap/internal/guest"
	"hypertap/internal/hv"
	"hypertap/internal/vmi"
	"hypertap/internal/workload"
)

// The Fig. 7 performance study: UnixBench-class workloads run to completion
// under different monitoring configurations; overhead is the relative
// increase in virtual completion time over the unmonitored baseline.

// MonitorSetup names one monitoring configuration of Fig. 7.
type MonitorSetup struct {
	// Name labels the configuration.
	Name string
	// Features is the interception set the configuration arms.
	Features intercept.Features
	// Attach registers the configuration's auditors.
	Attach func(m *hv.Machine, engine *intercept.Engine) error
	// LoggingStacks > 1 selects the separate-stacks ablation.
	LoggingStacks int
}

// attachHRKD registers the HRKD auditor (asynchronous, as deployed).
func attachHRKD(m *hv.Machine, engine *intercept.Engine) error {
	intro := vmi.New(m, m.Kernel().Symbols())
	det, err := hrkd.New(hrkd.Config{View: m, Counter: engine, Intro: intro})
	if err != nil {
		return err
	}
	return m.EM().Register(det, core.DeliverAsync, 0)
}

// attachHTNinja registers the HT-Ninja auditor (synchronous: its checks
// block the audited operation).
func attachHTNinja(m *hv.Machine, _ *intercept.Engine) error {
	intro := vmi.New(m, m.Kernel().Symbols())
	htn, err := ped.NewHTNinja(ped.HTNinjaConfig{Policy: ped.DefaultPolicy(), View: m, Intro: intro})
	if err != nil {
		return err
	}
	return m.EM().Register(htn, core.DeliverSync, 0)
}

// attachGOSHD registers the GOSHD auditor (asynchronous).
func attachGOSHD(m *hv.Machine, _ *intercept.Engine) error {
	det, err := goshd.New(goshd.Config{Clock: m.Clock(), VCPUs: m.NumVCPUs(), Threshold: 4 * time.Second})
	if err != nil {
		return err
	}
	if err := m.EM().Register(det, core.DeliverAsync, 0); err != nil {
		return err
	}
	det.Start()
	return nil
}

// hrkdFeatures is what HRKD's logging needs.
func hrkdFeatures() intercept.Features {
	return intercept.Features{ProcessSwitch: true, ThreadSwitch: true, TSSIntegrity: true}
}

// htNinjaFeatures is what HT-Ninja's logging needs.
func htNinjaFeatures() intercept.Features {
	return intercept.Features{ProcessSwitch: true, ThreadSwitch: true, Syscalls: true}
}

// allFeatures is the union the shared logging channel arms when all three
// auditors run — the point of unified logging is that this is NOT the sum of
// three separate stacks.
func allFeatures() intercept.Features {
	return intercept.Features{ProcessSwitch: true, ThreadSwitch: true, TSSIntegrity: true, Syscalls: true}
}

// Fig7Setups returns the paper's three monitored configurations.
func Fig7Setups() []MonitorSetup {
	return []MonitorSetup{
		{Name: "HRKD only", Features: hrkdFeatures(), Attach: attachHRKD},
		{Name: "HT-Ninja only", Features: htNinjaFeatures(), Attach: attachHTNinja},
		{Name: "All three", Features: allFeatures(), Attach: func(m *hv.Machine, e *intercept.Engine) error {
			if err := attachHRKD(m, e); err != nil {
				return err
			}
			if err := attachHTNinja(m, e); err != nil {
				return err
			}
			return attachGOSHD(m, e)
		}},
	}
}

// AblationSeparate returns the separate-logging-stacks ablation setup: the
// same three auditors, but each with its own interception and logging stack.
func AblationSeparate() MonitorSetup {
	s := Fig7Setups()[2]
	s.Name = "All three (separate stacks)"
	s.LoggingStacks = 3
	return s
}

// PerfRow is one benchmark's results across configurations.
type PerfRow struct {
	Benchmark string
	// Baseline is the unmonitored virtual completion time.
	Baseline time.Duration
	// Times maps setup name to monitored completion time.
	Times map[string]time.Duration
}

// Overhead returns a setup's relative slowdown.
func (r *PerfRow) Overhead(setup string) float64 {
	t, ok := r.Times[setup]
	if !ok || r.Baseline == 0 {
		return 0
	}
	return float64(t-r.Baseline) / float64(r.Baseline)
}

// PerfResult is the Fig. 7 reproduction.
type PerfResult struct {
	Rows   []PerfRow
	Setups []string
}

// PerfConfig parameterizes the study.
type PerfConfig struct {
	// Scale multiplies workload sizes (measurement stability).
	Scale int
	// Seed drives guest jitter.
	Seed int64
	// Setups lists the monitoring configurations (default Fig7Setups).
	Setups []MonitorSetup
	// IncludeAblation adds the separate-stacks configuration.
	IncludeAblation bool
	// Parallel is the number of measurements run concurrently (each in
	// its own VM). 0 selects GOMAXPROCS.
	Parallel int
	// Progress, when set, is called per (benchmark, setup) completion.
	Progress func(done, total int)
}

// RunPerfOverhead measures Fig. 7. One work unit per (benchmark, column),
// where the columns are the unmonitored baseline plus every setup. All
// units of a benchmark deliberately share cfg.Seed rather than splitting
// per unit: overhead is a paired comparison, so the monitored runs must see
// the same guest jitter as their baseline.
func RunPerfOverhead(cfg PerfConfig) (*PerfResult, error) {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	setups := cfg.Setups
	if len(setups) == 0 {
		setups = Fig7Setups()
	}
	if cfg.IncludeAblation {
		setups = append(setups, AblationSeparate())
	}

	names := workloadNames(cfg.Scale)
	result := &PerfResult{}
	for _, s := range setups {
		result.Setups = append(result.Setups, s.Name)
	}

	cols := len(setups) + 1 // column 0 is the baseline
	campaign := runner.Campaign[time.Duration]{
		Units:    len(names) * cols,
		Parallel: cfg.Parallel,
		Seed:     cfg.Seed,
		Progress: cfg.Progress,
		Run: func(ctx *runner.Ctx) (time.Duration, error) {
			bench, col := ctx.Index/cols, ctx.Index%cols
			if col == 0 {
				t, err := runSuiteItem(bench, cfg.Scale, cfg.Seed, nil)
				if err != nil {
					return 0, fmt.Errorf("experiment: baseline %s: %w", names[bench], err)
				}
				return t, nil
			}
			t, err := runSuiteItem(bench, cfg.Scale, cfg.Seed, &setups[col-1])
			if err != nil {
				return 0, fmt.Errorf("experiment: %s under %s: %w", names[bench], setups[col-1].Name, err)
			}
			return t, nil
		},
	}
	res, err := campaign.Execute()
	if err != nil {
		return nil, err
	}

	for idx, name := range names {
		row := PerfRow{Benchmark: name, Times: make(map[string]time.Duration)}
		row.Baseline = res.Units[idx*cols]
		for i := range setups {
			row.Times[setups[i].Name] = res.Units[idx*cols+1+i]
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

// workloadNames returns the suite's benchmark names in order.
func workloadNames(scale int) []string {
	specs := workload.Suite(scale)
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// runSuiteItem runs one suite benchmark to completion under an optional
// monitoring setup and returns its virtual completion time.
func runSuiteItem(idx, scale int, seed int64, setup *MonitorSetup) (time.Duration, error) {
	costs := hv.DefaultCosts()
	if setup != nil && setup.LoggingStacks > 1 {
		costs.LoggingStacks = setup.LoggingStacks
	}
	m, err := hv.New(hv.Config{
		VCPUs:    2,
		MemBytes: 96 << 20,
		Costs:    costs,
		Guest:    guest.Config{Seed: seed},
	})
	if err != nil {
		return 0, err
	}
	var engine *intercept.Engine
	if setup != nil {
		engine, err = m.EnableMonitoring(setup.Features)
		if err != nil {
			return 0, err
		}
	}
	if err := m.Boot(); err != nil {
		return 0, err
	}
	if setup != nil && setup.Attach != nil {
		if err := setup.Attach(m, engine); err != nil {
			return 0, err
		}
	}
	spec := workload.Suite(scale)[idx]
	return workload.RunToCompletion(m, spec, 30*time.Minute)
}

// FormatPerf renders Fig. 7 as an overhead table.
func FormatPerf(r *PerfResult) string {
	var b strings.Builder
	b.WriteString("Fig. 7: performance overhead of HyperTap monitors (virtual time vs baseline)\n")
	fmt.Fprintf(&b, "%-32s %12s", "benchmark", "baseline")
	for _, s := range r.Setups {
		fmt.Fprintf(&b, " %26s", s)
	}
	b.WriteString("\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-32s %12v", row.Benchmark, row.Baseline.Round(time.Microsecond))
		for _, s := range r.Setups {
			fmt.Fprintf(&b, " %25.1f%%", 100*row.Overhead(s))
		}
		b.WriteString("\n")
	}

	// Category summary, as the paper's prose reports.
	b.WriteString("\ncategory means:\n")
	for _, cat := range []string{"CPU intensive", "Disk I/O intensive", "Context switching", "System call"} {
		members := workload.Categories()[cat]
		fmt.Fprintf(&b, "%-22s", cat)
		for _, s := range r.Setups {
			var sum float64
			var n int
			for _, row := range r.Rows {
				for _, mem := range members {
					if row.Benchmark == mem {
						sum += row.Overhead(s)
						n++
					}
				}
			}
			if n > 0 {
				fmt.Fprintf(&b, " %25.1f%%", 100*sum/float64(n))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
