package experiment

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strconv"
	"time"

	"hypertap/internal/auditors/fleetwatch"
	"hypertap/internal/auditors/goshd"
	"hypertap/internal/capture"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/experiment/runner"
	"hypertap/internal/flight"
	"hypertap/internal/guest"
	"hypertap/internal/host"
	"hypertap/internal/telemetry"
)

// FleetConfig parameterizes the fleet campaign: a sharded run whose unit is
// not one VM but one N-VM *host* — the paper's Fig. 2 deployment replicated
// across a cluster. Each unit boots a host with a shared EM, per-VM GOSHD
// auditors and a fleet-wide event-rate accountant, runs a mixed workload,
// and reports per-VM and per-host outcomes.
type FleetConfig struct {
	// Hosts is the number of campaign units (default 4).
	Hosts int
	// VMsPerHost sizes each unit's fleet (default 3).
	VMsPerHost int
	// Duration is each host's virtual run length (default 2s).
	Duration time.Duration
	// Threshold is GOSHD's per-VM alarm threshold (default 100ms, scaled
	// to the short campaign run).
	Threshold time.Duration
	// Seed is the campaign seed. Unit i gets runner.UnitSeed(Seed, i);
	// within a unit, VM j's guest runs at unit seed + j.
	Seed int64
	// Parallel is the worker count; 0 selects GOMAXPROCS. Results are
	// identical regardless of parallelism.
	Parallel int
	// Progress, when set, is called after each host completes
	// (serialized by the campaign engine).
	Progress func(done, total int)
	// Telemetry, when set, receives each completed host's registry shard
	// as it finishes; per-VM labeled series roll up across the campaign.
	Telemetry *telemetry.Registry
	// FlightDepth sizes each unit host's flight-recorder rings
	// (host.Config.FlightDepth): zero selects the default, negative
	// disables the tracing plane.
	FlightDepth int
	// IncidentDir, when non-empty, arms incident capture: a unit that
	// panics, fails, or ends with auditor detections dumps a self-contained
	// bundle under IncidentDir/unit-NNN/, replayable with ReplayIncident.
	// Requires the tracing plane (FlightDepth >= 0).
	IncidentDir string
	// Capture additionally records each unit host's full decoded exit stream
	// (internal/capture format) and writes it into any raised bundle as
	// capture.htcs. Such bundles replay through ReplayIncidentStream — the
	// auditor plane re-runs from the artifact with no guest simulation at
	// all, unlike ReplayIncident's full re-execution. Requires IncidentDir.
	Capture bool
	// ExtraAuditors, when set, runs for each unit after the standard
	// auditors are registered and before boot — the fault-injection hook
	// campaign tests use to plant a panicking or erroring auditor.
	ExtraAuditors func(unit int, h *host.Host) error
}

func (c *FleetConfig) fillDefaults() {
	if c.Hosts <= 0 {
		c.Hosts = 4
	}
	if c.VMsPerHost <= 0 {
		c.VMsPerHost = 3
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Threshold == 0 {
		c.Threshold = 100 * time.Millisecond
	}
}

// FleetVMReport is one VM's outcome within its host.
type FleetVMReport struct {
	Name     string `json:"name"`
	Seed     int64  `json:"seed"`
	Events   uint64 `json:"events"`
	Syscalls uint64 `json:"syscalls"`
	Switches uint64 `json:"context_switches"`
	Exits    uint64 `json:"vm_exits"`
	Alarms   int    `json:"goshd_alarms"`
}

// FleetHostReport is one unit's outcome.
type FleetHostReport struct {
	Host   string          `json:"host"`
	Seed   int64           `json:"seed"`
	VMs    []FleetVMReport `json:"vms"`
	Events uint64          `json:"events"`
	Storms int             `json:"storms"`
}

// FleetResult is the whole campaign.
type FleetResult struct {
	Hosts       []FleetHostReport `json:"hosts"`
	TotalEvents uint64            `json:"total_events"`
	TotalAlarms int               `json:"total_alarms"`
	TotalStorms int               `json:"total_storms"`
}

// fleetUnitWorkload gives VM slot j of every campaign host a deterministic,
// slot-distinct loop; the rotation keeps hosts heterogeneous without any
// per-host configuration.
func fleetUnitWorkload(slot int) []guest.Step {
	specs := [][]guest.Step{
		{guest.DoSyscall(guest.SysGetPID), guest.Compute(time.Millisecond)},
		{guest.DoSyscall(guest.SysWrite, 1, 64), guest.Compute(2 * time.Millisecond)},
		{guest.Compute(time.Millisecond), guest.Sleep(4 * time.Millisecond)},
	}
	return specs[slot%len(specs)]
}

// newFleetSink arms incident capture for one unit, stamping the campaign
// coordinates that make the bundle replayable. stream, when non-nil,
// contributes the recorded exit stream to each raised bundle.
func newFleetSink(cfg *FleetConfig, ctx *runner.Ctx, hostName string, h *host.Host, stream func() []byte) (*flight.Sink, error) {
	return flight.NewSink(flight.SinkConfig{
		Dir:       filepath.Join(cfg.IncidentDir, fmt.Sprintf("unit-%03d", ctx.Index)),
		Host:      hostName,
		EM:        h.EM(),
		Telemetry: ctx.Telemetry,
		Capture:   stream,
		Context: map[string]string{
			"campaign_seed": strconv.FormatInt(cfg.Seed, 10),
			"unit":          strconv.Itoa(ctx.Index),
			"unit_seed":     strconv.FormatInt(ctx.Seed, 10),
			"host":          hostName,
		},
	})
}

// runFleetUnit executes one campaign unit: an N-VM host with per-VM GOSHD,
// a fleet-wide accountant, and — when the campaign armed an IncidentDir —
// incident capture for panics, errors and detections.
func runFleetUnit(cfg *FleetConfig, ctx *runner.Ctx) (rep FleetHostReport, err error) {
	feat := intercept.Features{
		ProcessSwitch: true, ThreadSwitch: true, TSSIntegrity: true,
		Syscalls: true, IO: true,
	}
	hostName := fmt.Sprintf("host%d", ctx.Index)
	specs := make([]host.VMSpec, cfg.VMsPerHost)
	seeds := make([]int64, cfg.VMsPerHost)
	for j := range specs {
		seeds[j] = runner.UnitSeed(ctx.Seed, j)
		specs[j] = host.VMSpec{
			Name:    fmt.Sprintf("%s-vm%d", hostName, j),
			Guest:   guest.Config{Seed: seeds[j]},
			Monitor: true, Features: feat,
		}
	}
	h, err := host.New(host.Config{
		Name: hostName, VMs: specs, Telemetry: ctx.Telemetry,
		FlightDepth: cfg.FlightDepth,
	})
	if err != nil {
		return FleetHostReport{}, err
	}
	// Exit-stream capture: a recorder tapped into the host before boot sees
	// every decoded event, tick and barrier. The sink's Capture callback
	// flushes lazily — only a raised bundle materializes the stream.
	var capBuf bytes.Buffer
	var capRec *capture.Recorder
	var capStream func() []byte
	if cfg.Capture {
		if cfg.IncidentDir == "" {
			return FleetHostReport{}, fmt.Errorf("experiment: FleetConfig.Capture requires IncidentDir")
		}
		hdr := capture.Header{Host: hostName, Tick: time.Millisecond}
		for j := range specs {
			hdr.VMs = append(hdr.VMs, capture.VMHeader{
				ID:   h.Machine(j).VMID(),
				Name: specs[j].Name, VCPUs: h.Machine(j).NumVCPUs(),
			})
		}
		if capRec, err = capture.NewRecorder(&capBuf, hdr); err != nil {
			return FleetHostReport{}, err
		}
		h.SetExitTap(capRec)
		capStream = func() []byte {
			// Finish is idempotent; a mid-run bundle (error/panic path) gets
			// a clean end marker too.
			_ = capRec.Finish()
			return append([]byte(nil), capBuf.Bytes()...)
		}
	}
	var sink *flight.Sink
	if cfg.IncidentDir != "" {
		if sink, err = newFleetSink(cfg, ctx, hostName, h, capStream); err != nil {
			return FleetHostReport{}, err
		}
	}
	// Any panic or error on the unit's single-threaded schedule dumps a
	// bundle before the unit reports failure: the rings still hold the last
	// events leading up to the fault, so the artifact alone reproduces it.
	defer func() {
		kind := "error"
		if r := recover(); r != nil {
			kind = "panic"
			err = fmt.Errorf("fleet unit %d: panic: %v", ctx.Index, r)
		}
		if err != nil && sink != nil {
			if _, serr := sink.Raise(kind, 0, h.Machine(0).Clock().Now(), err); serr != nil {
				err = fmt.Errorf("%w (incident capture also failed: %v)", err, serr)
			}
		}
	}()
	// Verdict spans: each detection callback stamps the triggering event's
	// span into the shared ring, tying the verdict to the decode it judged.
	// Multiplexer.RecordSpan serializes the step through the EM lock.
	em := h.EM()
	var goshdActor, fwActor uint8
	dets := make([]*goshd.Detector, cfg.VMsPerHost)
	for j := range dets {
		m := h.Machine(j)
		vmid := core.VMID(j)
		det, derr := goshd.New(goshd.Config{
			VM:        vmid,
			Clock:     m.Clock(),
			VCPUs:     m.NumVCPUs(),
			Threshold: cfg.Threshold,
			OnHang: func(a goshd.HangAlarm) {
				em.RecordSpan(a.Span, vmid, core.PhaseVerdict, goshdActor, a.At)
			},
		})
		if derr != nil {
			return FleetHostReport{}, derr
		}
		if rerr := h.EM().RegisterAuditor(det, core.DeliverAsync, 0); rerr != nil {
			return FleetHostReport{}, rerr
		}
		dets[j] = det
	}
	fw := fleetwatch.New(fleetwatch.Config{
		VMName: h.EM().VMName,
		OnStorm: func(s fleetwatch.Storm) {
			em.RecordSpan(s.Span, s.VM, core.PhaseVerdict, fwActor, s.WindowStart)
		},
	})
	if ctx.Telemetry != nil {
		fw.EnableTelemetry(ctx.Telemetry)
	}
	if err := h.EM().RegisterAuditor(fw, core.DeliverAsync, 1<<16); err != nil {
		return FleetHostReport{}, err
	}
	if id, ok := h.EM().ActorID("goshd"); ok {
		goshdActor = id
	}
	if id, ok := h.EM().ActorID("fleetwatch"); ok {
		fwActor = id
	}
	if cfg.ExtraAuditors != nil {
		if err := cfg.ExtraAuditors(ctx.Index, h); err != nil {
			return FleetHostReport{}, err
		}
	}
	if err := h.Boot(); err != nil {
		return FleetHostReport{}, err
	}
	for j := 0; j < cfg.VMsPerHost; j++ {
		dets[j].Start()
		if _, err := h.Machine(j).Kernel().CreateProcess(&guest.ProcSpec{
			Comm: fmt.Sprintf("w%d", j), UID: 1000,
			Program: &guest.LoopProgram{Body: fleetUnitWorkload(j)},
		}, nil); err != nil {
			return FleetHostReport{}, err
		}
	}
	h.Run(cfg.Duration)

	report := FleetHostReport{Host: hostName, Seed: ctx.Seed}
	totalAlarms := 0
	firstAlarmVM := core.VMID(0)
	for j := 0; j < cfg.VMsPerHost; j++ {
		m := h.Machine(j)
		st := m.Kernel().Stats()
		vm := FleetVMReport{
			Name:     m.Name(),
			Seed:     seeds[j],
			Events:   h.EM().PublishedVM(core.VMID(j)),
			Syscalls: st.Syscalls,
			Switches: st.ContextSwitches,
			Exits:    m.TotalExits(),
			Alarms:   len(dets[j].Alarms()),
		}
		if vm.Alarms > 0 && totalAlarms == 0 {
			firstAlarmVM = core.VMID(j)
		}
		totalAlarms += vm.Alarms
		report.VMs = append(report.VMs, vm)
		report.Events += vm.Events
	}
	report.Storms = len(fw.Storms())
	if sink != nil && (totalAlarms > 0 || report.Storms > 0) {
		implicated := firstAlarmVM
		if totalAlarms == 0 {
			implicated = fw.Storms()[0].VM
		}
		verdict := fmt.Errorf("%d goshd alarms, %d storms", totalAlarms, report.Storms)
		if _, serr := sink.Raise("detection", implicated, h.Machine(0).Clock().Now(), verdict); serr != nil {
			sink = nil // capture already attempted; the defer must not retry
			return report, serr
		}
	}
	return report, nil
}

// RunFleetCampaign executes the fleet campaign on the sharded engine: hosts
// are independent units, so the campaign parallelizes across hosts while
// each host's internal schedule stays the deterministic single-threaded
// round-robin the equivalence suite pins.
func RunFleetCampaign(cfg FleetConfig) (*FleetResult, error) {
	cfg.fillDefaults()
	campaign := runner.Campaign[FleetHostReport]{
		Units:     cfg.Hosts,
		Parallel:  cfg.Parallel,
		Seed:      cfg.Seed,
		Progress:  cfg.Progress,
		Telemetry: cfg.Telemetry != nil,
		Live:      cfg.Telemetry,
		Run: func(ctx *runner.Ctx) (FleetHostReport, error) {
			return runFleetUnit(&cfg, ctx)
		},
	}

	res, err := campaign.Execute()
	if err != nil {
		return nil, err
	}
	out := &FleetResult{Hosts: res.Units}
	for _, hr := range res.Units {
		out.TotalEvents += hr.Events
		for _, vm := range hr.VMs {
			out.TotalAlarms += vm.Alarms
		}
		out.TotalStorms += hr.Storms
	}
	return out, nil
}

// ReplayIncident re-runs the campaign unit recorded in an incident bundle.
// The bundle's manifest carries the campaign seed and unit index, and every
// unit is a pure function of (configuration, seed, index), so the replay
// reproduces the original run exactly — same events, same verdicts, same
// panic if one was captured. Pass the same FleetConfig the campaign used
// (including any ExtraAuditors fault injection); cfg.Seed is overridden from
// the bundle. Set cfg.IncidentDir to capture a fresh bundle from the replay
// (byte-comparable to the original), or leave it empty for a pure re-run.
func ReplayIncident(cfg FleetConfig, bundleDir string) (*FleetHostReport, error) {
	b, err := flight.LoadBundle(bundleDir)
	if err != nil {
		return nil, err
	}
	unitStr, ok := b.Meta.Context["unit"]
	if !ok {
		return nil, fmt.Errorf("experiment: bundle %s carries no unit index", bundleDir)
	}
	unit, err := strconv.Atoi(unitStr)
	if err != nil {
		return nil, fmt.Errorf("experiment: bundle %s: bad unit index %q", bundleDir, unitStr)
	}
	seedStr, ok := b.Meta.Context["campaign_seed"]
	if !ok {
		return nil, fmt.Errorf("experiment: bundle %s carries no campaign seed", bundleDir)
	}
	if cfg.Seed, err = strconv.ParseInt(seedStr, 10, 64); err != nil {
		return nil, fmt.Errorf("experiment: bundle %s: bad campaign seed %q", bundleDir, seedStr)
	}
	cfg.fillDefaults()
	ctx := &runner.Ctx{
		Index: unit,
		Seed:  runner.UnitSeed(cfg.Seed, unit),
		RNG:   runner.UnitRNG(cfg.Seed, unit),
	}
	rep, err := runFleetUnit(&cfg, ctx)
	return &rep, err
}

// StreamVMReport is one VM's outcome from a stream replay. Kernel-side stats
// (syscalls, switches, exits) do not exist here — there is no kernel — so
// only the auditing plane's view is reported.
type StreamVMReport struct {
	Name   string `json:"name"`
	Events uint64 `json:"events"`
	Alarms int    `json:"goshd_alarms"`
}

// StreamReplayReport is ReplayIncidentStream's outcome.
type StreamReplayReport struct {
	Host        string           `json:"host"`
	VMs         []StreamVMReport `json:"vms"`
	Events      uint64           `json:"events"`
	Storms      int              `json:"storms"`
	Divergences uint64           `json:"divergences"`
}

// ReplayIncidentStream re-drives the auditor plane from a bundle's recorded
// exit stream (capture.htcs, written by campaigns run with Capture: true).
// Where ReplayIncident re-executes the whole unit — guests, kernels and all —
// this replays only the decoded stream the auditors consumed, so it works
// even when the faulting workload cannot be re-run, and it isolates the
// auditor plane: identical verdicts here plus a diverging ReplayIncident
// points the investigation at the simulation, not the auditors. The standard
// unit auditors (per-VM GOSHD, fleet accountant) are registered in campaign
// order, so verdict spans land in the same rings under the same actor IDs.
func ReplayIncidentStream(cfg FleetConfig, bundleDir string) (*StreamReplayReport, error) {
	b, err := flight.LoadBundle(bundleDir)
	if err != nil {
		return nil, err
	}
	if len(b.Capture) == 0 {
		return nil, fmt.Errorf("experiment: bundle %s carries no exit stream (campaign ran without Capture)", bundleDir)
	}
	cfg.fillDefaults()
	// The flight table's resident range comes from the capture header — a v2
	// (cluster) stream carries sparse VMIDs, so the rings sit at a base, not
	// at zero. Parse the header alone first; the replay re-reads the stream.
	pre, err := capture.NewReader(bytes.NewReader(b.Capture))
	if err != nil {
		return nil, err
	}
	hdr := pre.Header()
	var fl *core.FlightTable
	if cfg.FlightDepth >= 0 {
		base, top := hdr.VMs[0].ID, hdr.VMs[0].ID
		for _, vm := range hdr.VMs {
			if vm.ID < base {
				base = vm.ID
			}
			if vm.ID > top {
				top = vm.ID
			}
		}
		fl = core.NewFlightTable(int(top-base)+1, cfg.FlightDepth, 0)
		fl.SetVMBase(base)
	}
	rp, err := capture.NewReplay(bytes.NewReader(b.Capture), capture.ReplayConfig{Flight: fl})
	if err != nil {
		return nil, err
	}
	em := rp.EM()
	var goshdActor, fwActor uint8
	dets := make([]*goshd.Detector, len(hdr.VMs))
	for j := range dets {
		vmid := hdr.VMs[j].ID
		det, derr := goshd.New(goshd.Config{
			VM:        vmid,
			Clock:     rp.Clock(vmid),
			VCPUs:     hdr.VMs[j].VCPUs,
			Threshold: cfg.Threshold,
			OnHang: func(a goshd.HangAlarm) {
				em.RecordSpan(a.Span, vmid, core.PhaseVerdict, goshdActor, a.At)
			},
		})
		if derr != nil {
			return nil, derr
		}
		if rerr := em.RegisterAuditor(det, core.DeliverAsync, 0); rerr != nil {
			return nil, rerr
		}
		dets[j] = det
	}
	fw := fleetwatch.New(fleetwatch.Config{
		VMName: em.VMName,
		OnStorm: func(s fleetwatch.Storm) {
			em.RecordSpan(s.Span, s.VM, core.PhaseVerdict, fwActor, s.WindowStart)
		},
	})
	if err := em.RegisterAuditor(fw, core.DeliverAsync, 1<<16); err != nil {
		return nil, err
	}
	if id, ok := em.ActorID("goshd"); ok {
		goshdActor = id
	}
	if id, ok := em.ActorID("fleetwatch"); ok {
		fwActor = id
	}
	for j := range dets {
		dets[j].Start()
	}
	if err := rp.Run(); err != nil {
		return nil, err
	}
	replayedHost := hdr.Host
	if replayedHost == "" {
		replayedHost = b.Meta.Context["host"]
	}
	report := &StreamReplayReport{Host: replayedHost, Divergences: rp.Divergences()}
	for j := range hdr.VMs {
		vm := StreamVMReport{
			Name:   hdr.VMs[j].Name,
			Events: em.PublishedVM(hdr.VMs[j].ID),
			Alarms: len(dets[j].Alarms()),
		}
		report.VMs = append(report.VMs, vm)
		report.Events += vm.Events
	}
	report.Storms = len(fw.Storms())
	return report, nil
}
