package experiment

import (
	"fmt"
	"time"

	"hypertap/internal/auditors/fleetwatch"
	"hypertap/internal/auditors/goshd"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/experiment/runner"
	"hypertap/internal/guest"
	"hypertap/internal/host"
	"hypertap/internal/telemetry"
)

// FleetConfig parameterizes the fleet campaign: a sharded run whose unit is
// not one VM but one N-VM *host* — the paper's Fig. 2 deployment replicated
// across a cluster. Each unit boots a host with a shared EM, per-VM GOSHD
// auditors and a fleet-wide event-rate accountant, runs a mixed workload,
// and reports per-VM and per-host outcomes.
type FleetConfig struct {
	// Hosts is the number of campaign units (default 4).
	Hosts int
	// VMsPerHost sizes each unit's fleet (default 3).
	VMsPerHost int
	// Duration is each host's virtual run length (default 2s).
	Duration time.Duration
	// Threshold is GOSHD's per-VM alarm threshold (default 100ms, scaled
	// to the short campaign run).
	Threshold time.Duration
	// Seed is the campaign seed. Unit i gets runner.UnitSeed(Seed, i);
	// within a unit, VM j's guest runs at unit seed + j.
	Seed int64
	// Parallel is the worker count; 0 selects GOMAXPROCS. Results are
	// identical regardless of parallelism.
	Parallel int
	// Progress, when set, is called after each host completes
	// (serialized by the campaign engine).
	Progress func(done, total int)
	// Telemetry, when set, receives each completed host's registry shard
	// as it finishes; per-VM labeled series roll up across the campaign.
	Telemetry *telemetry.Registry
}

func (c *FleetConfig) fillDefaults() {
	if c.Hosts <= 0 {
		c.Hosts = 4
	}
	if c.VMsPerHost <= 0 {
		c.VMsPerHost = 3
	}
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Threshold == 0 {
		c.Threshold = 100 * time.Millisecond
	}
}

// FleetVMReport is one VM's outcome within its host.
type FleetVMReport struct {
	Name     string `json:"name"`
	Seed     int64  `json:"seed"`
	Events   uint64 `json:"events"`
	Syscalls uint64 `json:"syscalls"`
	Switches uint64 `json:"context_switches"`
	Exits    uint64 `json:"vm_exits"`
	Alarms   int    `json:"goshd_alarms"`
}

// FleetHostReport is one unit's outcome.
type FleetHostReport struct {
	Host   string          `json:"host"`
	Seed   int64           `json:"seed"`
	VMs    []FleetVMReport `json:"vms"`
	Events uint64          `json:"events"`
	Storms int             `json:"storms"`
}

// FleetResult is the whole campaign.
type FleetResult struct {
	Hosts       []FleetHostReport `json:"hosts"`
	TotalEvents uint64            `json:"total_events"`
	TotalAlarms int               `json:"total_alarms"`
	TotalStorms int               `json:"total_storms"`
}

// fleetUnitWorkload gives VM slot j of every campaign host a deterministic,
// slot-distinct loop; the rotation keeps hosts heterogeneous without any
// per-host configuration.
func fleetUnitWorkload(slot int) []guest.Step {
	specs := [][]guest.Step{
		{guest.DoSyscall(guest.SysGetPID), guest.Compute(time.Millisecond)},
		{guest.DoSyscall(guest.SysWrite, 1, 64), guest.Compute(2 * time.Millisecond)},
		{guest.Compute(time.Millisecond), guest.Sleep(4 * time.Millisecond)},
	}
	return specs[slot%len(specs)]
}

// RunFleetCampaign executes the fleet campaign on the sharded engine: hosts
// are independent units, so the campaign parallelizes across hosts while
// each host's internal schedule stays the deterministic single-threaded
// round-robin the equivalence suite pins.
func RunFleetCampaign(cfg FleetConfig) (*FleetResult, error) {
	cfg.fillDefaults()
	feat := intercept.Features{
		ProcessSwitch: true, ThreadSwitch: true, TSSIntegrity: true,
		Syscalls: true, IO: true,
	}

	campaign := runner.Campaign[FleetHostReport]{
		Units:     cfg.Hosts,
		Parallel:  cfg.Parallel,
		Seed:      cfg.Seed,
		Progress:  cfg.Progress,
		Telemetry: cfg.Telemetry != nil,
		Live:      cfg.Telemetry,
		Run: func(ctx *runner.Ctx) (FleetHostReport, error) {
			hostName := fmt.Sprintf("host%d", ctx.Index)
			specs := make([]host.VMSpec, cfg.VMsPerHost)
			seeds := make([]int64, cfg.VMsPerHost)
			for j := range specs {
				seeds[j] = runner.UnitSeed(ctx.Seed, j)
				specs[j] = host.VMSpec{
					Name:    fmt.Sprintf("%s-vm%d", hostName, j),
					Guest:   guest.Config{Seed: seeds[j]},
					Monitor: true, Features: feat,
				}
			}
			h, err := host.New(host.Config{
				Name: hostName, VMs: specs, Telemetry: ctx.Telemetry,
			})
			if err != nil {
				return FleetHostReport{}, err
			}
			dets := make([]*goshd.Detector, cfg.VMsPerHost)
			for j := range dets {
				m := h.Machine(j)
				det, err := goshd.New(goshd.Config{
					VM:        core.VMID(j),
					Clock:     m.Clock(),
					VCPUs:     m.NumVCPUs(),
					Threshold: cfg.Threshold,
				})
				if err != nil {
					return FleetHostReport{}, err
				}
				if err := h.EM().RegisterAuditor(det, core.DeliverAsync, 0); err != nil {
					return FleetHostReport{}, err
				}
				dets[j] = det
			}
			fw := fleetwatch.New(fleetwatch.Config{VMName: h.EM().VMName})
			if ctx.Telemetry != nil {
				fw.EnableTelemetry(ctx.Telemetry)
			}
			if err := h.EM().RegisterAuditor(fw, core.DeliverAsync, 1<<16); err != nil {
				return FleetHostReport{}, err
			}
			if err := h.Boot(); err != nil {
				return FleetHostReport{}, err
			}
			for j := 0; j < cfg.VMsPerHost; j++ {
				dets[j].Start()
				if _, err := h.Machine(j).Kernel().CreateProcess(&guest.ProcSpec{
					Comm: fmt.Sprintf("w%d", j), UID: 1000,
					Program: &guest.LoopProgram{Body: fleetUnitWorkload(j)},
				}, nil); err != nil {
					return FleetHostReport{}, err
				}
			}
			h.Run(cfg.Duration)

			report := FleetHostReport{Host: hostName, Seed: ctx.Seed}
			for j := 0; j < cfg.VMsPerHost; j++ {
				m := h.Machine(j)
				st := m.Kernel().Stats()
				vm := FleetVMReport{
					Name:     m.Name(),
					Seed:     seeds[j],
					Events:   h.EM().PublishedVM(core.VMID(j)),
					Syscalls: st.Syscalls,
					Switches: st.ContextSwitches,
					Exits:    m.TotalExits(),
					Alarms:   len(dets[j].Alarms()),
				}
				report.VMs = append(report.VMs, vm)
				report.Events += vm.Events
			}
			report.Storms = len(fw.Storms())
			return report, nil
		},
	}

	res, err := campaign.Execute()
	if err != nil {
		return nil, err
	}
	out := &FleetResult{Hosts: res.Units}
	for _, hr := range res.Units {
		out.TotalEvents += hr.Events
		for _, vm := range hr.VMs {
			out.TotalAlarms += vm.Alarms
		}
		out.TotalStorms += hr.Storms
	}
	return out, nil
}
