package experiment

import (
	"testing"
	"time"
)

func TestNinjaDemosSmoke(t *testing.T) {
	rows, err := RunPassiveAttackDemos(7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatDemos(rows))
	for _, r := range rows {
		if r.Detected != r.Expected {
			t.Errorf("%s vs %s: detected=%v want %v", r.Attack, r.Monitor, r.Detected, r.Expected)
		}
	}
}

func TestShowdownSmoke(t *testing.T) {
	reps := 30
	if testing.Short() {
		reps = 8
	}
	cells, err := RunNinjaShowdown(ShowdownConfig{Reps: reps, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatShowdown(cells))
}

func TestSideChannelSmoke(t *testing.T) {
	rows, err := RunSideChannelTable(SideChannelConfig{
		Intervals: []time.Duration{500 * time.Millisecond, time.Second},
		Samples:   12,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatSideChannel(rows))
}
