package experiment

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hypertap/internal/core"
	"hypertap/internal/flight"
	"hypertap/internal/guest"
	"hypertap/internal/host"
	"hypertap/internal/inject"
)

// incidentDir returns the directory a campaign test arms incident capture
// into. By default that is the test's scratch space; when
// HYPERTAP_INCIDENT_DIR is set (CI sets it), bundles land under that root
// named for the test and survive a failing run, so the CI job can upload
// them as artifacts and the failure replays locally from the exact bundle.
// Passing tests clean their bundles up so green runs upload nothing.
func incidentDir(t *testing.T) string {
	root := os.Getenv("HYPERTAP_INCIDENT_DIR")
	if root == "" {
		return t.TempDir()
	}
	dir := filepath.Join(root, strings.ReplaceAll(t.Name(), "/", "_"))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("incident dir %s: %v", dir, err)
	}
	t.Cleanup(func() {
		if !t.Failed() {
			os.RemoveAll(dir)
		}
	})
	return dir
}

// compareBundleDirs asserts two incident bundles are byte-identical — the
// replayability contract: re-running a unit from its bundle coordinates
// reproduces the exact artifact, not merely a similar one.
func compareBundleDirs(t *testing.T, want, got string) {
	t.Helper()
	wantEnts, err := os.ReadDir(want)
	if err != nil {
		t.Fatal(err)
	}
	gotEnts, err := os.ReadDir(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantEnts) != len(gotEnts) {
		t.Fatalf("bundle file count diverged: original %d files, replay %d", len(wantEnts), len(gotEnts))
	}
	for _, e := range wantEnts {
		wb, err := os.ReadFile(filepath.Join(want, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		gb, err := os.ReadFile(filepath.Join(got, e.Name()))
		if err != nil {
			t.Fatalf("replay bundle is missing %s: %v", e.Name(), err)
		}
		if !bytes.Equal(wb, gb) {
			t.Errorf("replayed bundle file %s differs from the original (%d vs %d bytes)", e.Name(), len(wb), len(gb))
		}
	}
}

// TestFleetIncidentPanicCapture is the acceptance path for incident capture:
// an auditor that panics mid-campaign produces a self-contained bundle, and
// ReplayIncident re-runs the failing unit from the bundle alone to the
// identical verdict — down to byte-equal flight recordings.
func TestFleetIncidentPanicCapture(t *testing.T) {
	dir := incidentDir(t)
	chaos := func(unit int, h *host.Host) error {
		if unit != 1 {
			return nil
		}
		n := 0
		return h.EM().Register(&core.AuditorFunc{
			AuditorName: "chaos",
			EventMask:   core.MaskAll,
			Fn: func(ev *core.Event) {
				n++
				if n == 200 {
					panic("induced chaos fault")
				}
			},
		}, core.DeliverSync, 0)
	}
	cfg := FleetConfig{
		Hosts:         2,
		VMsPerHost:    2,
		Duration:      400 * time.Millisecond,
		Seed:          7,
		Parallel:      1,
		IncidentDir:   dir,
		ExtraAuditors: chaos,
	}

	_, err := RunFleetCampaign(cfg)
	if err == nil {
		t.Fatal("campaign with a panicking auditor reported success")
	}
	const wantMsg = "fleet unit 1: panic: induced chaos fault"
	if !strings.Contains(err.Error(), wantMsg) {
		t.Fatalf("campaign error = %q, want it to contain %q", err, wantMsg)
	}

	bundleDir := filepath.Join(dir, "unit-001", "incident-000-panic")
	b, err := flight.LoadBundle(bundleDir)
	if err != nil {
		t.Fatalf("loading the panic bundle: %v", err)
	}
	if b.Meta.Kind != "panic" {
		t.Fatalf("bundle kind = %q, want %q", b.Meta.Kind, "panic")
	}
	if b.Meta.Error != wantMsg {
		t.Fatalf("bundle error = %q, want %q", b.Meta.Error, wantMsg)
	}
	if b.Meta.Context["unit"] != "1" || b.Meta.Context["campaign_seed"] != "7" {
		t.Fatalf("bundle context lacks replay coordinates: %v", b.Meta.Context)
	}
	if len(b.Exits) != cfg.VMsPerHost {
		t.Fatalf("bundle carries %d VM rings, want %d", len(b.Exits), cfg.VMsPerHost)
	}
	total := 0
	for _, ring := range b.Exits {
		total += len(ring)
	}
	if total == 0 {
		t.Fatal("panic bundle captured no exits; the flight recorder was dark")
	}
	if len(b.Spans) == 0 || b.Spans[len(b.Spans)-1].Phase != core.PhaseIncident {
		t.Fatalf("bundle's span tail is not the incident marker: %+v", b.Spans)
	}

	// Replay from the bundle: same config, fresh capture directory. The
	// unit must fail with the identical error and dump an identical bundle.
	replayCfg := cfg
	replayCfg.IncidentDir = t.TempDir()
	_, rerr := ReplayIncident(replayCfg, bundleDir)
	if rerr == nil {
		t.Fatal("replaying a panic bundle reported success")
	}
	if rerr.Error() != b.Meta.Error {
		t.Fatalf("replay verdict diverged:\noriginal %q\nreplay   %q", b.Meta.Error, rerr)
	}
	compareBundleDirs(t, bundleDir,
		filepath.Join(replayCfg.IncidentDir, "unit-001", "incident-000-panic"))
}

// TestFleetIncidentDetectionBundle drives the detection path end to end with
// a real injected guest fault: a persistent missing-release hang in one VM's
// write path raises GOSHD alarms, the unit dumps a detection bundle naming
// that VM, and the bundle replays to the identical report and artifact.
func TestFleetIncidentDetectionBundle(t *testing.T) {
	dir := incidentDir(t)
	hangVM1 := func(unit int, h *host.Host) error {
		m := h.Machine(1)
		k := m.Kernel()
		var site guest.SiteID
		for _, s := range k.Sites() {
			if s.Kind == guest.FaultMissingRelease && s.Path == guest.SysWrite {
				site = s.ID
				break
			}
		}
		if site == 0 {
			return fmt.Errorf("no missing-release site on the write path")
		}
		plan, err := inject.NewPlan(inject.Fault{Site: site, Persistence: inject.Persistent}, m.Clock().Now)
		if err != nil {
			return err
		}
		k.SetFaultPlan(plan)
		return nil
	}
	cfg := FleetConfig{
		Hosts:      1,
		VMsPerHost: 3, // slot 1's workload exercises the faulted write path
		Duration:   200 * time.Millisecond,
		Threshold:  50 * time.Millisecond,
		Seed:       11,
		Parallel:   1,
		// Deep rings: every event costs a drain span per async subscriber,
		// and the verdict anchors recorded at alarm time must still be
		// resident when the post-run capture fires.
		FlightDepth:   4096,
		IncidentDir:   dir,
		ExtraAuditors: hangVM1,
	}

	res, err := RunFleetCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAlarms == 0 {
		t.Fatal("injected hang raised no GOSHD alarms; detection bundle path unexercised")
	}
	if res.Hosts[0].VMs[1].Alarms == 0 {
		t.Fatalf("alarms did not land on the faulted VM: %+v", res.Hosts[0].VMs)
	}
	// Prove the fault manifested: the hung VM makes strictly less progress
	// than the identical campaign without the injection.
	baseCfg := cfg
	baseCfg.IncidentDir = ""
	baseCfg.ExtraAuditors = nil
	base, err := RunFleetCampaign(baseCfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts[0].VMs[1].Events >= base.Hosts[0].VMs[1].Events {
		t.Fatalf("faulted VM progressed as far as the clean run (%d >= %d events); the hang never bit",
			res.Hosts[0].VMs[1].Events, base.Hosts[0].VMs[1].Events)
	}

	bundleDir := filepath.Join(dir, "unit-000", "incident-000-detection")
	b, err := flight.LoadBundle(bundleDir)
	if err != nil {
		t.Fatalf("loading the detection bundle: %v", err)
	}
	if b.Meta.Kind != "detection" {
		t.Fatalf("bundle kind = %q, want %q", b.Meta.Kind, "detection")
	}
	// Implication picks the first VM with alarms in ID order; with idle
	// vCPUs alarming at boot that is deterministic but not necessarily the
	// faulted VM, so pin consistency rather than a specific ID.
	if int(b.Meta.VM) >= len(res.Hosts[0].VMs) {
		t.Fatalf("bundle implicates out-of-range VM %d", b.Meta.VM)
	}
	if res.Hosts[0].VMs[b.Meta.VM].Alarms == 0 {
		t.Fatalf("bundle implicates VM %d, which raised no alarms", b.Meta.VM)
	}
	if want := res.Hosts[0].VMs[b.Meta.VM].Name; b.Meta.VMName != want {
		t.Fatalf("bundle VM name = %q, want %q", b.Meta.VMName, want)
	}
	if !strings.Contains(b.Meta.Error, "goshd alarms") {
		t.Fatalf("bundle verdict = %q, want a goshd alarm summary", b.Meta.Error)
	}
	// The span stream must hold the verdict anchors GOSHD recorded and end
	// with the incident marker.
	verdicts := 0
	for _, s := range b.Spans {
		if s.Phase == core.PhaseVerdict {
			verdicts++
		}
	}
	if verdicts == 0 {
		t.Fatal("detection bundle carries no verdict spans")
	}
	if b.Spans[len(b.Spans)-1].Phase != core.PhaseIncident {
		t.Fatalf("bundle's span tail is not the incident marker: %+v", b.Spans[len(b.Spans)-1])
	}

	replayCfg := cfg
	replayCfg.IncidentDir = t.TempDir()
	rep, rerr := ReplayIncident(replayCfg, bundleDir)
	if rerr != nil {
		t.Fatalf("replaying a detection bundle: %v", rerr)
	}
	if !reflect.DeepEqual(*rep, res.Hosts[0]) {
		t.Fatalf("replayed report diverged:\noriginal %+v\nreplay   %+v", res.Hosts[0], *rep)
	}
	compareBundleDirs(t, bundleDir,
		filepath.Join(replayCfg.IncidentDir, "unit-000", "incident-000-detection"))
}

// TestFleetIncidentStreamReplay drives the third leg of the incident story:
// a campaign armed with Capture records its decoded exit stream into the
// detection bundle, and ReplayIncidentStream re-runs the auditor plane from
// that artifact alone — no guests, no kernels, no injection plan — to the
// same per-VM verdicts. This is the triage split: ReplayIncident re-executes
// the simulation, ReplayIncidentStream re-executes only the auditors.
func TestFleetIncidentStreamReplay(t *testing.T) {
	dir := incidentDir(t)
	hangVM1 := func(unit int, h *host.Host) error {
		m := h.Machine(1)
		k := m.Kernel()
		var site guest.SiteID
		for _, s := range k.Sites() {
			if s.Kind == guest.FaultMissingRelease && s.Path == guest.SysWrite {
				site = s.ID
				break
			}
		}
		if site == 0 {
			return fmt.Errorf("no missing-release site on the write path")
		}
		plan, err := inject.NewPlan(inject.Fault{Site: site, Persistence: inject.Persistent}, m.Clock().Now)
		if err != nil {
			return err
		}
		k.SetFaultPlan(plan)
		return nil
	}
	cfg := FleetConfig{
		Hosts:         1,
		VMsPerHost:    3,
		Duration:      200 * time.Millisecond,
		Threshold:     50 * time.Millisecond,
		Seed:          11,
		Parallel:      1,
		FlightDepth:   4096,
		IncidentDir:   dir,
		Capture:       true,
		ExtraAuditors: hangVM1,
	}

	res, err := RunFleetCampaign(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalAlarms == 0 {
		t.Fatal("injected hang raised no GOSHD alarms; no detection bundle to stream-replay")
	}

	bundleDir := filepath.Join(dir, "unit-000", "incident-000-detection")
	b, err := flight.LoadBundle(bundleDir)
	if err != nil {
		t.Fatalf("loading the detection bundle: %v", err)
	}
	if len(b.Capture) == 0 {
		t.Fatal("Capture campaign produced a bundle without capture.htcs")
	}

	rep, err := ReplayIncidentStream(cfg, bundleDir)
	if err != nil {
		t.Fatalf("stream-replaying the detection bundle: %v", err)
	}
	if rep.Divergences != 0 {
		t.Fatalf("stream replay of a pristine capture reported %d divergences", rep.Divergences)
	}
	orig := res.Hosts[0]
	if rep.Host != orig.Host {
		t.Fatalf("stream replay host = %q, want %q", rep.Host, orig.Host)
	}
	if len(rep.VMs) != len(orig.VMs) {
		t.Fatalf("stream replay saw %d VMs, campaign had %d", len(rep.VMs), len(orig.VMs))
	}
	for j := range orig.VMs {
		if rep.VMs[j].Name != orig.VMs[j].Name {
			t.Errorf("VM %d name: replay %q, live %q", j, rep.VMs[j].Name, orig.VMs[j].Name)
		}
		if rep.VMs[j].Events != orig.VMs[j].Events {
			t.Errorf("VM %d events: replay %d, live %d", j, rep.VMs[j].Events, orig.VMs[j].Events)
		}
		if rep.VMs[j].Alarms != orig.VMs[j].Alarms {
			t.Errorf("VM %d alarms: replay %d, live %d", j, rep.VMs[j].Alarms, orig.VMs[j].Alarms)
		}
	}
	if rep.Events != orig.Events {
		t.Errorf("total events: replay %d, live %d", rep.Events, orig.Events)
	}
	if rep.Storms != orig.Storms {
		t.Errorf("storms: replay %d, live %d", rep.Storms, orig.Storms)
	}

	// A bundle from an uncaptured campaign must refuse stream replay loudly
	// rather than replaying an empty stream to a vacuous all-clear.
	plainCfg := cfg
	plainCfg.Capture = false
	plainCfg.IncidentDir = t.TempDir()
	if _, err := RunFleetCampaign(plainCfg); err != nil {
		t.Fatal(err)
	}
	plainBundle := filepath.Join(plainCfg.IncidentDir, "unit-000", "incident-000-detection")
	if _, err := ReplayIncidentStream(plainCfg, plainBundle); err == nil || !strings.Contains(err.Error(), "no exit stream") {
		t.Fatalf("stream replay of a captureless bundle: err = %v, want a no-exit-stream refusal", err)
	}
}

// TestFleetCampaignWithoutIncidentDir pins that the capture plane is inert
// when unarmed: a panicking unit still fails loudly, and nothing is written.
func TestFleetCampaignWithoutIncidentDir(t *testing.T) {
	cfg := FleetConfig{
		Hosts:      1,
		VMsPerHost: 2,
		Duration:   200 * time.Millisecond,
		Seed:       3,
		Parallel:   1,
		ExtraAuditors: func(unit int, h *host.Host) error {
			n := 0
			return h.EM().Register(&core.AuditorFunc{
				AuditorName: "chaos",
				EventMask:   core.MaskAll,
				Fn: func(ev *core.Event) {
					n++
					if n == 50 {
						panic("unarmed chaos")
					}
				},
			}, core.DeliverSync, 0)
		},
	}
	_, err := RunFleetCampaign(cfg)
	if err == nil || !strings.Contains(err.Error(), "panic: unarmed chaos") {
		t.Fatalf("campaign error = %v, want the propagated panic", err)
	}
}
