package experiment

import (
	"encoding/json"
	"io"
	"sort"
	"time"

	"hypertap/internal/inject"
	"hypertap/internal/telemetry"
)

// Machine-readable exports: every experiment result serializes to JSON so
// downstream tooling (plotting, regression tracking) can consume the
// reproduction without scraping tables.

// goshdCellJSON is the export form of one Fig. 4 cell.
type goshdCellJSON struct {
	Workload        string         `json:"workload"`
	Preemptible     bool           `json:"preemptible"`
	Persistence     string         `json:"persistence"`
	Outcomes        map[string]int `json:"outcomes"`
	FirstLatenciesS []float64      `json:"first_latencies_s"`
	FullLatenciesS  []float64      `json:"full_latencies_s"`
}

// goshdJSON is the export form of the whole campaign.
type goshdJSON struct {
	Sites            int                 `json:"sites"`
	Runs             int                 `json:"runs"`
	Coverage         float64             `json:"coverage"`
	PartialHangShare float64             `json:"partial_hang_share"`
	Cells            []goshdCellJSON     `json:"cells"`
	Telemetry        *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// WriteJSON exports the campaign result.
func (r *GOSHDResult) WriteJSON(w io.Writer) error {
	out := goshdJSON{
		Sites:            r.Sites,
		Runs:             r.Runs,
		Coverage:         r.Coverage(),
		PartialHangShare: r.PartialHangShare(),
		Telemetry:        r.Telemetry,
	}
	// Cells export in their display order — map iteration order would make
	// the JSON bytes vary run to run even at a fixed seed.
	cells := make([]GOSHDCell, 0, len(r.Cells))
	for cell := range r.Cells {
		cells = append(cells, cell)
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].String() < cells[j].String() })
	for _, cell := range cells {
		stats := r.Cells[cell]
		cj := goshdCellJSON{
			Workload:    cell.Workload,
			Preemptible: cell.Preemptible,
			Persistence: cell.Persistence.String(),
			Outcomes:    make(map[string]int),
		}
		for _, o := range inject.AllOutcomes() {
			if n := stats.Counts[o]; n > 0 {
				cj.Outcomes[o.String()] = n
			}
		}
		cj.FirstLatenciesS = toSeconds(stats.FirstLatencies)
		cj.FullLatenciesS = toSeconds(stats.FullLatencies)
		out.Cells = append(out.Cells, cj)
	}
	return encodeJSON(w, out)
}

// WriteJSON exports Table II.
func (r *HRKDResult) WriteJSON(w io.Writer) error {
	return encodeJSON(w, struct {
		AllDetected bool      `json:"all_detected"`
		Rows        []HRKDRow `json:"rows"`
	}{r.AllDetected(), r.Rows})
}

// sideChannelJSON is the export form of one Table III row.
type sideChannelJSON struct {
	IntervalS  float64 `json:"interval_s"`
	PredictedS float64 `json:"predicted_s"`
	MinS       float64 `json:"min_s"`
	MaxS       float64 `json:"max_s"`
	SDS        float64 `json:"sd_s"`
	Samples    int     `json:"samples"`
}

// WriteSideChannelJSON exports Table III.
func WriteSideChannelJSON(w io.Writer, rows []SideChannelRow) error {
	out := make([]sideChannelJSON, len(rows))
	for i, r := range rows {
		out[i] = sideChannelJSON{
			IntervalS:  r.Nominal.Seconds(),
			PredictedS: r.Mean.Seconds(),
			MinS:       r.Min.Seconds(),
			MaxS:       r.Max.Seconds(),
			SDS:        r.SD.Seconds(),
			Samples:    r.Samples,
		}
	}
	return encodeJSON(w, out)
}

// WriteShowdownJSON exports the §VIII-C2 cells.
func WriteShowdownJSON(w io.Writer, cells []ShowdownCell) error {
	type cellJSON struct {
		Monitor     string  `json:"monitor"`
		Param       string  `json:"param"`
		Reps        int     `json:"reps"`
		Detected    int     `json:"detected"`
		Probability float64 `json:"probability"`
	}
	out := make([]cellJSON, len(cells))
	for i, c := range cells {
		out[i] = cellJSON{c.Monitor, c.Param, c.Reps, c.Detected, c.Probability()}
	}
	return encodeJSON(w, out)
}

// WriteDemosJSON exports the Fig. 6 attack matrix.
func WriteDemosJSON(w io.Writer, rows []DemoRow) error {
	return encodeJSON(w, rows)
}

// perfRowJSON is the export form of one Fig. 7 row.
type perfRowJSON struct {
	Benchmark  string             `json:"benchmark"`
	BaselineS  float64            `json:"baseline_s"`
	OverheadBy map[string]float64 `json:"overhead_by_setup"`
}

// WriteJSON exports Fig. 7.
func (r *PerfResult) WriteJSON(w io.Writer) error {
	out := make([]perfRowJSON, len(r.Rows))
	for i, row := range r.Rows {
		rj := perfRowJSON{
			Benchmark:  row.Benchmark,
			BaselineS:  row.Baseline.Seconds(),
			OverheadBy: make(map[string]float64, len(r.Setups)),
		}
		for _, s := range r.Setups {
			rj.OverheadBy[s] = row.Overhead(s)
		}
		out[i] = rj
	}
	return encodeJSON(w, out)
}

// WriteTableIJSON exports the verified Table I.
func WriteTableIJSON(w io.Writer, rows []TableIRow) error {
	return encodeJSON(w, rows)
}

func toSeconds(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = d.Seconds()
	}
	return out
}

func encodeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
