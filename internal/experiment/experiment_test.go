package experiment

import (
	"strings"
	"testing"
	"time"

	"hypertap/internal/inject"
)

func TestCDF(t *testing.T) {
	lats := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	marks := []time.Duration{500 * time.Millisecond, 2 * time.Second, 10 * time.Second}
	got := CDF(lats, marks)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CDF = %v, want %v", got, want)
		}
	}
	// Empty input: all zeros, no panic.
	for _, v := range CDF(nil, marks) {
		if v != 0 {
			t.Fatal("CDF of empty input nonzero")
		}
	}
}

func TestGOSHDResultAggregation(t *testing.T) {
	r := &GOSHDResult{Cells: map[GOSHDCell]*GOSHDCellStats{
		{Workload: "a"}: {
			Counts: map[inject.Outcome]int{
				inject.NotActivated: 5, inject.NotManifested: 2,
				inject.PartialHang: 2, inject.FullHang: 6,
			},
			FirstLatencies: []time.Duration{4 * time.Second, 5 * time.Second},
			FullLatencies:  []time.Duration{9 * time.Second},
		},
		{Workload: "b"}: {
			Counts:         map[inject.Outcome]int{inject.NotDetected: 2, inject.FullHang: 10},
			FirstLatencies: []time.Duration{6 * time.Second},
		},
	}}
	totals := r.Outcomes()
	if totals[inject.FullHang] != 16 || totals[inject.NotActivated] != 5 {
		t.Fatalf("totals = %v", totals)
	}
	// manifested = 2 + 2 + 16 = 20; detected = 18.
	if got := r.Coverage(); got != 0.9 {
		t.Fatalf("coverage = %v, want 0.9", got)
	}
	// partial share = 2 / 18.
	if got := r.PartialHangShare(); got < 0.111 || got > 0.112 {
		t.Fatalf("partial share = %v", got)
	}
	if got := r.AllFirstLatencies(); len(got) != 3 || got[0] != 4*time.Second {
		t.Fatalf("first latencies = %v", got)
	}
	if got := r.AllFullLatencies(); len(got) != 1 {
		t.Fatalf("full latencies = %v", got)
	}
	out := FormatGOSHD(r)
	if !strings.Contains(out, "coverage") || !strings.Contains(out, "a/non-preempt") {
		t.Fatalf("FormatGOSHD output missing pieces:\n%s", out)
	}
	if FormatLatencyCDF(r) == "" {
		t.Fatal("empty latency CDF output")
	}
}

func TestEmptyResultNoDivideByZero(t *testing.T) {
	r := &GOSHDResult{Cells: map[GOSHDCell]*GOSHDCellStats{}}
	if r.Coverage() != 0 || r.PartialHangShare() != 0 {
		t.Fatal("empty result produced nonzero rates")
	}
}

func TestGOSHDCellString(t *testing.T) {
	c := GOSHDCell{Workload: "hanoi", Preemptible: true, Persistence: inject.Transient}
	if !strings.Contains(c.String(), "preempt") || !strings.Contains(c.String(), "hanoi") {
		t.Fatalf("cell string = %q", c.String())
	}
}

func TestSummarizeDurations(t *testing.T) {
	row := summarizeDurations(time.Second, []time.Duration{
		900 * time.Millisecond, time.Second, 1100 * time.Millisecond,
	})
	if row.Mean != time.Second {
		t.Fatalf("mean = %v", row.Mean)
	}
	if row.Min != 900*time.Millisecond || row.Max != 1100*time.Millisecond {
		t.Fatalf("min/max = %v/%v", row.Min, row.Max)
	}
	if row.SD <= 0 {
		t.Fatal("zero SD for spread data")
	}
	if row.Samples != 3 {
		t.Fatalf("samples = %d", row.Samples)
	}
}

func TestShowdownCellProbability(t *testing.T) {
	c := ShowdownCell{Reps: 300, Detected: 30}
	if c.Probability() != 0.1 {
		t.Fatalf("probability = %v", c.Probability())
	}
	if (ShowdownCell{}).Probability() != 0 {
		t.Fatal("zero reps produced nonzero probability")
	}
}

func TestPerfRowOverhead(t *testing.T) {
	row := PerfRow{Baseline: 100 * time.Millisecond, Times: map[string]time.Duration{
		"m": 119 * time.Millisecond,
	}}
	if got := row.Overhead("m"); got < 0.189 || got > 0.191 {
		t.Fatalf("overhead = %v, want 0.19", got)
	}
	if row.Overhead("missing") != 0 {
		t.Fatal("missing setup produced overhead")
	}
}

func TestFig7SetupsAndAblation(t *testing.T) {
	setups := Fig7Setups()
	if len(setups) != 3 {
		t.Fatalf("Fig7Setups = %d, want 3", len(setups))
	}
	names := map[string]bool{}
	for _, s := range setups {
		names[s.Name] = true
		if s.Attach == nil {
			t.Errorf("%s has no attach", s.Name)
		}
	}
	for _, want := range []string{"HRKD only", "HT-Ninja only", "All three"} {
		if !names[want] {
			t.Errorf("missing setup %q", want)
		}
	}
	ab := AblationSeparate()
	if ab.LoggingStacks != 3 || ab.Name == "All three" {
		t.Fatalf("ablation = %+v", ab)
	}
}

func TestFormatHelpers(t *testing.T) {
	if FormatSideChannel([]SideChannelRow{{Nominal: time.Second, Mean: time.Second, Samples: 3}}) == "" {
		t.Fatal("empty side channel table")
	}
	if FormatShowdown([]ShowdownCell{{Monitor: "x", Param: "y", Reps: 1}}) == "" {
		t.Fatal("empty showdown table")
	}
	demo := FormatDemos([]DemoRow{{Attack: "a", Monitor: "m", Detected: true, Expected: false}})
	if !strings.Contains(demo, "MISMATCH") {
		t.Fatal("demo mismatch marker missing")
	}
	hr := FormatHRKD(&HRKDResult{Rows: []HRKDRow{{Rootkit: "FU", Detected: false}}})
	if !strings.Contains(hr, "WARNING") {
		t.Fatal("HRKD warning missing for undetected rootkit")
	}
	perf := FormatPerf(&PerfResult{Setups: []string{"m"}, Rows: []PerfRow{{
		Benchmark: "Dhrystone 2", Baseline: time.Second,
		Times: map[string]time.Duration{"m": 1100 * time.Millisecond},
	}}})
	if !strings.Contains(perf, "Dhrystone") {
		t.Fatal("perf table missing rows")
	}
	ti := FormatTableI([]TableIRow{{Category: "c", Event: "e", ExitType: "x", Invariant: "i", Observed: 3}})
	if !strings.Contains(ti, "Table I") {
		t.Fatal("table I header missing")
	}
}

// TestGOSHDCampaignTinySlice runs a 4-site, single-cell campaign end to end
// as a fast regression of the whole Fig. 4 pipeline.
func TestGOSHDCampaignTinySlice(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign slice is seconds-long")
	}
	r, err := RunGOSHDCampaign(GOSHDConfig{
		SampleEvery:  96,
		Workloads:    []string{"make -j2"},
		Kernels:      []bool{false},
		Persistences: []inject.Persistence{inject.Persistent},
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Runs != r.Sites {
		t.Fatalf("runs = %d, sites = %d", r.Runs, r.Sites)
	}
	totals := r.Outcomes()
	var sum int
	for _, n := range totals {
		sum += n
	}
	if sum != r.Runs {
		t.Fatalf("outcome counts (%d) do not add up to runs (%d)", sum, r.Runs)
	}
	if totals[inject.PartialHang]+totals[inject.FullHang] == 0 {
		t.Fatal("campaign slice produced no detected hangs")
	}
}

func TestSweepsProduceMonotoneTrends(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps are multi-second")
	}
	cfg := SweepConfig{Reps: 25, Seed: 9}
	h, err := RunHNinjaIntervalSweep([]time.Duration{
		4 * time.Millisecond, 12 * time.Millisecond, 40 * time.Millisecond,
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 3 || h[0].Probability < h[2].Probability {
		t.Fatalf("H-Ninja curve not decreasing: %+v", h)
	}
	if h[0].Probability < 0.9 {
		t.Fatalf("4ms interval should catch nearly everything, got %.2f", h[0].Probability)
	}
	o, err := RunONinjaSpamSweep([]int{0, 200}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(o) != 2 || o[0].Probability < o[1].Probability {
		t.Fatalf("O-Ninja curve not decreasing: %+v", o)
	}
	if FormatSweep("t", h) == "" {
		t.Fatal("empty sweep format")
	}
}
