package experiment

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"

	"hypertap/internal/experiment/runner"
	"hypertap/internal/inject"
	"hypertap/internal/telemetry"
)

// The serial≡parallel equivalence suite: every harness that fans out over
// the campaign engine must produce identical results — deep-equal structs
// AND identical JSON bytes — at workers 1, 2 and 4 for the same seed.
// `make check` runs this leg under -race with GOMAXPROCS=4, so scheduling
// genuinely interleaves while the outputs are compared.

// equivalenceCase runs one harness at a given worker count and returns its
// result (for reflect.DeepEqual) plus its JSON encoding (for byte
// identity — field order, float formatting, series order and all).
type equivalenceCase struct {
	name string
	run  func(t *testing.T, parallel int) (result any, jsonBytes []byte)
}

func mustJSON(t *testing.T, write func(w io.Writer) error) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// canonicalizeTelemetry strips the wall-clock-derived content from latency
// histograms: the sampled HandleEvent/scan timings are real durations (the
// instrumentation's documented //hypertap:allow wallclock escapes), so
// their sums and bucket placements vary between any two runs, serial or
// not. The sample *counts* are deterministic (every 64th event) and stay.
func canonicalizeTelemetry(s *telemetry.Snapshot) {
	if s == nil {
		return
	}
	for i := range s.Histograms {
		h := &s.Histograms[i]
		h.Sum, h.Max, h.P50, h.P90, h.P99 = 0, 0, 0, 0, 0
		h.Buckets = nil
	}
}

func equivalenceCases() []equivalenceCase {
	goshdSample := 48
	showdownReps := 12
	sweepReps := 8
	sideSamples := 10
	if testing.Short() {
		// The race-checked `make check` leg runs with -short: smaller
		// campaigns still exercise the worker fan-out determinism.
		goshdSample = 128
		showdownReps = 5
		sweepReps = 4
		sideSamples = 6
	}
	return []equivalenceCase{
		{"goshd-campaign", func(t *testing.T, parallel int) (any, []byte) {
			// Telemetry on: the per-unit shard merge must be deterministic
			// too, and it is part of the JSON report.
			r, err := RunGOSHDCampaign(GOSHDConfig{
				SampleEvery:  goshdSample,
				Workloads:    []string{"make -j2"},
				Kernels:      []bool{false},
				Persistences: []inject.Persistence{inject.Persistent},
				Seed:         7,
				Parallel:     parallel,
				Telemetry:    telemetry.NewRegistry(),
			})
			if err != nil {
				t.Fatal(err)
			}
			canonicalizeTelemetry(r.Telemetry)
			return r, mustJSON(t, r.WriteJSON)
		}},
		{"hrkd-matrix", func(t *testing.T, parallel int) (any, []byte) {
			r, err := RunHRKDMatrix(HRKDConfig{Seed: 5, Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			return r, mustJSON(t, r.WriteJSON)
		}},
		{"ninja-showdown", func(t *testing.T, parallel int) (any, []byte) {
			cells, err := RunNinjaShowdown(ShowdownConfig{
				Reps:            showdownReps,
				ONinjaSpam:      []int{0, 100},
				HNinjaIntervals: []time.Duration{8 * time.Millisecond},
				Seed:            3,
				Parallel:        parallel,
			})
			if err != nil {
				t.Fatal(err)
			}
			return cells, mustJSON(t, func(w io.Writer) error { return WriteShowdownJSON(w, cells) })
		}},
		{"side-channel", func(t *testing.T, parallel int) (any, []byte) {
			rows, err := RunSideChannelTable(SideChannelConfig{
				Intervals: []time.Duration{500 * time.Millisecond, time.Second},
				Samples:   sideSamples,
				Seed:      5,
				Parallel:  parallel,
			})
			if err != nil {
				t.Fatal(err)
			}
			return rows, mustJSON(t, func(w io.Writer) error { return WriteSideChannelJSON(w, rows) })
		}},
		{"hninja-interval-sweep", func(t *testing.T, parallel int) (any, []byte) {
			points, err := RunHNinjaIntervalSweep(
				[]time.Duration{4 * time.Millisecond, 16 * time.Millisecond},
				SweepConfig{Reps: sweepReps, Seed: 9, Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			return points, mustJSON(t, func(w io.Writer) error { return encodeJSON(w, points) })
		}},
		{"oninja-spam-sweep", func(t *testing.T, parallel int) (any, []byte) {
			points, err := RunONinjaSpamSweep([]int{0, 50},
				SweepConfig{Reps: sweepReps, Seed: 9, Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			return points, mustJSON(t, func(w io.Writer) error { return encodeJSON(w, points) })
		}},
		{"perf-overhead", func(t *testing.T, parallel int) (any, []byte) {
			r, err := RunPerfOverhead(PerfConfig{Scale: 1, Seed: 2, Parallel: parallel})
			if err != nil {
				t.Fatal(err)
			}
			return r, mustJSON(t, r.WriteJSON)
		}},
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	for _, tc := range equivalenceCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			serial, serialJSON := tc.run(t, 1)
			for _, workers := range []int{2, 4} {
				got, gotJSON := tc.run(t, workers)
				if !reflect.DeepEqual(serial, got) {
					t.Errorf("workers=%d: result differs from serial\nserial:   %+v\nparallel: %+v",
						workers, serial, got)
				}
				if !bytes.Equal(serialJSON, gotJSON) {
					t.Errorf("workers=%d: JSON bytes differ from serial\nserial:\n%s\nparallel:\n%s",
						workers, serialJSON, gotJSON)
				}
			}
		})
	}
}

// TestShowdownUnitIsolation pins the seed-splitting contract at harness
// level: any single (cell, rep) unit of the showdown, re-run in isolation
// with its split seed and RNG, reproduces its in-campaign verdict.
func TestShowdownUnitIsolation(t *testing.T) {
	reps := 6
	cfg := ShowdownConfig{
		Reps:            reps,
		ONinjaSpam:      []int{0},
		HNinjaIntervals: []time.Duration{8 * time.Millisecond},
		Seed:            17,
		Parallel:        4,
	}
	cells, err := RunNinjaShowdown(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.fillDefaults()
	specs := showdownCells(cfg)
	for cellIdx, spec := range specs {
		detected := 0
		for rep := 0; rep < reps; rep++ {
			unit := cellIdx*reps + rep
			ok, err := spec.run(runner.UnitSeed(cfg.Seed, unit), runner.UnitRNG(cfg.Seed, unit))
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				detected++
			}
		}
		if detected != cells[cellIdx].Detected {
			t.Errorf("%s %s: isolated reps detected %d, in-campaign %d",
				spec.monitor, spec.param, detected, cells[cellIdx].Detected)
		}
	}
}
