package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"hypertap/internal/experiment/runner"
)

// Detection-probability sweeps: the paper reports three points per monitor
// (§VIII-C2); these harnesses trace the full curves — detection probability
// as a function of H-Ninja's polling interval and of O-Ninja's scan
// population — so the crossover structure behind the paper's numbers is
// visible as a series rather than anecdotes.

// SweepPoint is one (parameter, probability) sample.
type SweepPoint struct {
	// Param is the swept value: interval seconds for H-Ninja, process
	// count for O-Ninja.
	Param float64 `json:"param"`
	// Label renders the parameter (e.g. "8ms", "131 procs").
	Label string `json:"label"`
	Reps  int    `json:"reps"`
	// Detected is the number of detected attacks.
	Detected int `json:"detected"`
	// Probability is Detected/Reps.
	Probability float64 `json:"probability"`
}

// SweepConfig parameterizes a sweep.
type SweepConfig struct {
	// Reps per point (default 100).
	Reps int
	Seed int64
	// Parallel is the number of reps run concurrently (each in its own
	// VM). 0 selects GOMAXPROCS.
	Parallel int
	// Progress, when set, is called per completed rep. Delivery is
	// serialized by the campaign engine.
	Progress func(done, total int)
}

// runSweep executes points × cfg.Reps work units — one per (point, rep),
// each drawing the attack phase from its own split RNG stream — and folds
// the detections into one SweepPoint per swept value.
func runSweep(cfg SweepConfig, points []SweepPoint,
	rep func(pointIdx int, seed int64, rng *rand.Rand) (bool, error)) ([]SweepPoint, error) {
	campaign := runner.Campaign[bool]{
		Units:    cfg.Reps * len(points),
		Parallel: cfg.Parallel,
		Seed:     cfg.Seed,
		Progress: cfg.Progress,
		Run: func(ctx *runner.Ctx) (bool, error) {
			return rep(ctx.Index/cfg.Reps, ctx.Seed, ctx.RNG)
		},
	}
	res, err := campaign.Execute()
	if err != nil {
		return nil, err
	}
	for i := range points {
		points[i].Reps = cfg.Reps
		for r := 0; r < cfg.Reps; r++ {
			if res.Units[i*cfg.Reps+r] {
				points[i].Detected++
			}
		}
		points[i].Probability = float64(points[i].Detected) / float64(points[i].Reps)
	}
	return points, nil
}

// RunHNinjaIntervalSweep measures H-Ninja's detection probability across
// polling intervals against the ~4ms rootkit-combined attack. The expected
// analytic curve is min(1, window/interval) under uniform attack phase.
func RunHNinjaIntervalSweep(intervals []time.Duration, cfg SweepConfig) ([]SweepPoint, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{
			2 * time.Millisecond, 4 * time.Millisecond, 6 * time.Millisecond,
			8 * time.Millisecond, 12 * time.Millisecond, 16 * time.Millisecond,
			20 * time.Millisecond, 32 * time.Millisecond, 48 * time.Millisecond,
		}
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 100
	}
	points := make([]SweepPoint, len(intervals))
	for i, interval := range intervals {
		points[i] = SweepPoint{Param: interval.Seconds(), Label: interval.String()}
	}
	out, err := runSweep(cfg, points, func(pointIdx int, seed int64, rng *rand.Rand) (bool, error) {
		return oneHNinjaRep(seed, intervals[pointIdx], rng)
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: H-Ninja sweep: %w", err)
	}
	return out, nil
}

// RunONinjaSpamSweep measures continuous O-Ninja's detection probability as
// the process population grows — the spamming attack's dose-response curve.
func RunONinjaSpamSweep(spamCounts []int, cfg SweepConfig) ([]SweepPoint, error) {
	if len(spamCounts) == 0 {
		spamCounts = []int{0, 25, 50, 100, 150, 200, 300}
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 100
	}
	points := make([]SweepPoint, len(spamCounts))
	for i, spam := range spamCounts {
		points[i] = SweepPoint{
			Param: float64(baselineProcs + spam),
			Label: fmt.Sprintf("%d procs", baselineProcs+spam),
		}
	}
	out, err := runSweep(cfg, points, func(pointIdx int, seed int64, rng *rand.Rand) (bool, error) {
		return oneONinjaRep(seed, spamCounts[pointIdx], rng)
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: O-Ninja sweep: %w", err)
	}
	return out, nil
}

// FormatSweep renders a sweep as an aligned series with a bar sparkline.
func FormatSweep(title string, points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %8s %10s %13s  %s\n", "param", "reps", "detected", "probability", "")
	for _, p := range points {
		bar := strings.Repeat("#", int(p.Probability*30+0.5))
		fmt.Fprintf(&b, "%-12s %8d %10d %12.1f%%  %s\n", p.Label, p.Reps, p.Detected, 100*p.Probability, bar)
	}
	return b.String()
}
