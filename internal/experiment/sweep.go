package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"time"
)

// Detection-probability sweeps: the paper reports three points per monitor
// (§VIII-C2); these harnesses trace the full curves — detection probability
// as a function of H-Ninja's polling interval and of O-Ninja's scan
// population — so the crossover structure behind the paper's numbers is
// visible as a series rather than anecdotes.

// SweepPoint is one (parameter, probability) sample.
type SweepPoint struct {
	// Param is the swept value: interval seconds for H-Ninja, process
	// count for O-Ninja.
	Param float64 `json:"param"`
	// Label renders the parameter (e.g. "8ms", "131 procs").
	Label string `json:"label"`
	Reps  int    `json:"reps"`
	// Detected is the number of detected attacks.
	Detected int `json:"detected"`
	// Probability is Detected/Reps.
	Probability float64 `json:"probability"`
}

// SweepConfig parameterizes a sweep.
type SweepConfig struct {
	// Reps per point (default 100).
	Reps int
	Seed int64
	// Progress, when set, is called per completed rep.
	Progress func(done, total int)
}

// RunHNinjaIntervalSweep measures H-Ninja's detection probability across
// polling intervals against the ~4ms rootkit-combined attack. The expected
// analytic curve is min(1, window/interval) under uniform attack phase.
func RunHNinjaIntervalSweep(intervals []time.Duration, cfg SweepConfig) ([]SweepPoint, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{
			2 * time.Millisecond, 4 * time.Millisecond, 6 * time.Millisecond,
			8 * time.Millisecond, 12 * time.Millisecond, 16 * time.Millisecond,
			20 * time.Millisecond, 32 * time.Millisecond, 48 * time.Millisecond,
		}
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.Reps * len(intervals)
	done := 0
	var points []SweepPoint
	for _, interval := range intervals {
		p := SweepPoint{Param: interval.Seconds(), Label: interval.String(), Reps: cfg.Reps}
		for rep := 0; rep < cfg.Reps; rep++ {
			detected, err := oneHNinjaRep(cfg.Seed+int64(rep), interval, rng)
			if err != nil {
				return nil, fmt.Errorf("experiment: H-Ninja sweep at %v: %w", interval, err)
			}
			if detected {
				p.Detected++
			}
			done++
			if cfg.Progress != nil {
				cfg.Progress(done, total)
			}
		}
		p.Probability = float64(p.Detected) / float64(p.Reps)
		points = append(points, p)
	}
	return points, nil
}

// RunONinjaSpamSweep measures continuous O-Ninja's detection probability as
// the process population grows — the spamming attack's dose-response curve.
func RunONinjaSpamSweep(spamCounts []int, cfg SweepConfig) ([]SweepPoint, error) {
	if len(spamCounts) == 0 {
		spamCounts = []int{0, 25, 50, 100, 150, 200, 300}
	}
	if cfg.Reps <= 0 {
		cfg.Reps = 100
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	total := cfg.Reps * len(spamCounts)
	done := 0
	var points []SweepPoint
	for _, spam := range spamCounts {
		p := SweepPoint{
			Param: float64(baselineProcs + spam),
			Label: fmt.Sprintf("%d procs", baselineProcs+spam),
			Reps:  cfg.Reps,
		}
		for rep := 0; rep < cfg.Reps; rep++ {
			detected, err := oneONinjaRep(cfg.Seed+int64(rep), spam, rng)
			if err != nil {
				return nil, fmt.Errorf("experiment: O-Ninja sweep at %d: %w", spam, err)
			}
			if detected {
				p.Detected++
			}
			done++
			if cfg.Progress != nil {
				cfg.Progress(done, total)
			}
		}
		p.Probability = float64(p.Detected) / float64(p.Reps)
		points = append(points, p)
	}
	return points, nil
}

// FormatSweep renders a sweep as an aligned series with a bar sparkline.
func FormatSweep(title string, points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %8s %10s %13s  %s\n", "param", "reps", "detected", "probability", "")
	for _, p := range points {
		bar := strings.Repeat("#", int(p.Probability*30+0.5))
		fmt.Fprintf(&b, "%-12s %8d %10d %12.1f%%  %s\n", p.Label, p.Reps, p.Detected, 100*p.Probability, bar)
	}
	return b.String()
}
