// Package trace records HyperTap's event stream for offline analysis and
// replays it through auditors later — the Ether lineage the paper builds on
// (§II: "Ether utilizes the VM Exit mechanism provided by HAV to record
// traces of guest VM execution for offline malware analysis"; HyperTap turns
// the same events into online monitors, and this package closes the loop by
// supporting both).
//
// A Recorder is just another auditor on the shared logging channel, so
// recording coexists with live monitors at no extra interception cost —
// unified logging again. Traces are JSON Lines: one self-describing record
// per event, stable across versions of the in-memory Event struct.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"hypertap/internal/arch"
	"hypertap/internal/core"
	"hypertap/internal/vclock"
)

// Record is the serialized form of one core.Event.
type Record struct {
	Type string `json:"type"`
	VCPU int    `json:"vcpu"`
	Seq  uint64 `json:"seq"`
	// TimeNS is the virtual timestamp in nanoseconds.
	TimeNS int64 `json:"time_ns"`
	// VM is the event's host-fleet identity. Recorded and restored so a
	// replayed multi-VM trace routes through VM-scoped subscriptions the
	// way the live stream did.
	VM uint16 `json:"vm"`
	// Span is the event's causal span in the flight recorder, kept so
	// offline analysis can correlate a trace with an incident bundle.
	Span uint64 `json:"span,omitempty"`

	// Architectural snapshot.
	RIP  uint64   `json:"rip,omitempty"`
	RSP  uint64   `json:"rsp,omitempty"`
	CR3  uint64   `json:"cr3"`
	TR   uint64   `json:"tr"`
	CPL  uint8    `json:"cpl"`
	GPRs []uint64 `json:"gprs,omitempty"`

	// Decoded payload (event-type specific, omitted when zero).
	PDBA        uint64    `json:"pdba,omitempty"`
	RSP0        uint64    `json:"rsp0,omitempty"`
	SyscallNr   uint32    `json:"syscall_nr,omitempty"`
	SyscallArgs [4]uint64 `json:"syscall_args,omitempty"`
	Port        uint16    `json:"port,omitempty"`
	IsWrite     bool      `json:"is_write,omitempty"`
	IOValue     uint32    `json:"io_value,omitempty"`
	Vector      uint8     `json:"vector,omitempty"`
	MSR         uint32    `json:"msr,omitempty"`
	MSRValue    uint64    `json:"msr_value,omitempty"`
	GPA         uint64    `json:"gpa,omitempty"`
	GVA         uint64    `json:"gva,omitempty"`
}

// eventTypeByName reverses core.EventType.String().
var eventTypeByName = func() map[string]core.EventType {
	m := make(map[string]core.EventType)
	for _, t := range core.AllEventTypes() {
		m[t.String()] = t
	}
	return m
}()

// FromEvent converts an event to its serialized form.
func FromEvent(ev *core.Event) Record {
	rec := Record{
		Type:        ev.Type.String(),
		VCPU:        ev.VCPU,
		Seq:         ev.Seq,
		TimeNS:      int64(ev.Time),
		VM:          uint16(ev.VM),
		Span:        uint64(ev.Span),
		RIP:         uint64(ev.Regs.RIP),
		RSP:         uint64(ev.Regs.RSP),
		CR3:         uint64(ev.Regs.CR3),
		TR:          uint64(ev.Regs.TR),
		CPL:         uint8(ev.Regs.CPL),
		PDBA:        uint64(ev.PDBA),
		RSP0:        uint64(ev.RSP0),
		SyscallNr:   ev.SyscallNr,
		SyscallArgs: ev.SyscallArgs,
		Port:        ev.Port,
		IsWrite:     ev.IsWrite,
		IOValue:     ev.IOValue,
		Vector:      ev.Vector,
		MSR:         uint32(ev.MSR),
		MSRValue:    ev.MSRValue,
		GPA:         uint64(ev.GPA),
		GVA:         uint64(ev.GVA),
	}
	rec.GPRs = make([]uint64, arch.NumGPR)
	copy(rec.GPRs, ev.Regs.GPRs[:])
	return rec
}

// ToEvent converts a record back into an event.
func (r *Record) ToEvent() (core.Event, error) {
	ty, ok := eventTypeByName[r.Type]
	if !ok {
		return core.Event{}, fmt.Errorf("trace: unknown event type %q", r.Type)
	}
	ev := core.Event{
		Type:        ty,
		VCPU:        r.VCPU,
		Seq:         r.Seq,
		Time:        time.Duration(r.TimeNS),
		VM:          core.VMID(r.VM),
		Span:        core.SpanID(r.Span),
		PDBA:        arch.GPA(r.PDBA),
		RSP0:        arch.GVA(r.RSP0),
		SyscallNr:   r.SyscallNr,
		SyscallArgs: r.SyscallArgs,
		Port:        r.Port,
		IsWrite:     r.IsWrite,
		IOValue:     r.IOValue,
		Vector:      r.Vector,
		MSR:         arch.MSR(r.MSR),
		MSRValue:    r.MSRValue,
		GPA:         arch.GPA(r.GPA),
		GVA:         arch.GVA(r.GVA),
	}
	ev.Regs.RIP = arch.GVA(r.RIP)
	ev.Regs.RSP = arch.GVA(r.RSP)
	ev.Regs.CR3 = arch.GPA(r.CR3)
	ev.Regs.TR = arch.GVA(r.TR)
	ev.Regs.CPL = arch.Ring(r.CPL)
	copy(ev.Regs.GPRs[:], r.GPRs)
	return ev, nil
}

// Recorder is an auditor that appends every delivered event to a JSONL
// stream. Register it asynchronously so tracing never blocks the guest.
type Recorder struct {
	mask core.EventMask

	mu    sync.Mutex
	bw    *bufio.Writer
	enc   *json.Encoder
	count uint64
	err   error
}

// NewRecorder builds a recorder capturing the masked event types.
func NewRecorder(w io.Writer, mask core.EventMask) *Recorder {
	if w == nil {
		panic("trace: NewRecorder requires a writer")
	}
	bw := bufio.NewWriter(w)
	return &Recorder{mask: mask, bw: bw, enc: json.NewEncoder(bw)}
}

var _ core.Auditor = (*Recorder)(nil)

// Name implements core.Auditor.
func (r *Recorder) Name() string { return "trace-recorder" }

// Mask implements core.Auditor.
func (r *Recorder) Mask() core.EventMask { return r.mask }

// HandleEvent implements core.Auditor.
func (r *Recorder) HandleEvent(ev *core.Event) {
	rec := FromEvent(ev)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	if err := r.enc.Encode(&rec); err != nil {
		r.err = err
		return
	}
	r.count++
}

// Flush drains buffered records to the underlying writer.
func (r *Recorder) Flush() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.bw.Flush()
}

// Count returns the number of recorded events.
func (r *Recorder) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Err returns the first write/encode error, if any.
func (r *Recorder) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Read decodes an entire trace.
func Read(rd io.Reader) ([]core.Event, error) {
	var out []core.Event
	dec := json.NewDecoder(bufio.NewReader(rd))
	for {
		var rec Record
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", len(out), err)
		}
		ev, err := rec.ToEvent()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", len(out), err)
		}
		out = append(out, ev)
	}
}

// deliverTo mirrors the EM's routing offline: masks filter by event type,
// and a VM-scoped auditor receives only its own VM's events. Unscoped
// auditors see the whole trace, like a fleet-wide subscription.
func deliverTo(a core.Auditor, ev *core.Event) bool {
	if !a.Mask().Has(ev.Type) {
		return false
	}
	if s, ok := a.(core.VMScoped); ok {
		if scope := s.VMScope(); !scope.Fleet() && scope.VM() != ev.VM {
			return false
		}
	}
	return true
}

// Replay feeds a recorded trace through auditors offline, in recorded order,
// respecting each auditor's mask and VM scope. It returns the number of
// events delivered.
func Replay(rd io.Reader, auditors ...core.Auditor) (int, error) {
	events, err := Read(rd)
	if err != nil {
		return 0, err
	}
	delivered := 0
	for i := range events {
		for _, a := range auditors {
			if deliverTo(a, &events[i]) {
				a.HandleEvent(&events[i])
				delivered++
			}
		}
	}
	return delivered, nil
}

// ReplayWithClock replays a trace while advancing a virtual clock to each
// event's timestamp, so timer-driven auditors (GOSHD's silence watchdogs)
// work offline exactly as they do online. tail optionally advances the clock
// past the last event; leave it zero for hang analysis — the end of a finite
// trace is not evidence of silence, while a real in-trace hang still shows
// as a gap because timer interrupts and surviving vCPUs keep producing
// events past it.
func ReplayWithClock(rd io.Reader, clock *vclock.Clock, tail time.Duration, auditors ...core.Auditor) (int, error) {
	events, err := Read(rd)
	if err != nil {
		return 0, err
	}
	delivered := 0
	for i := range events {
		clock.AdvanceTo(events[i].Time)
		for _, a := range auditors {
			if deliverTo(a, &events[i]) {
				a.HandleEvent(&events[i])
				delivered++
			}
		}
	}
	if tail > 0 {
		clock.Advance(tail)
	}
	return delivered, nil
}

// Summary aggregates a trace for quick offline triage.
type Summary struct {
	Events   int                 `json:"events"`
	ByType   map[string]int      `json:"by_type"`
	ByVCPU   map[int]int         `json:"by_vcpu"`
	Syscalls map[uint32]int      `json:"syscalls,omitempty"`
	Span     time.Duration       `json:"span_ns"`
	FirstSeq uint64              `json:"first_seq"`
	LastSeq  uint64              `json:"last_seq"`
	AddrSet  map[uint64]struct{} `json:"-"`
}

// Summarize scans a trace once and aggregates it.
func Summarize(rd io.Reader) (*Summary, error) {
	events, err := Read(rd)
	if err != nil {
		return nil, err
	}
	s := &Summary{
		ByType:   make(map[string]int),
		ByVCPU:   make(map[int]int),
		Syscalls: make(map[uint32]int),
		AddrSet:  make(map[uint64]struct{}),
	}
	var first, last time.Duration
	for i := range events {
		ev := &events[i]
		s.Events++
		s.ByType[ev.Type.String()]++
		s.ByVCPU[ev.VCPU]++
		if ev.Type == core.EvSyscall {
			s.Syscalls[ev.SyscallNr]++
		}
		if ev.Type == core.EvProcessSwitch {
			s.AddrSet[uint64(ev.PDBA)] = struct{}{}
		}
		if i == 0 {
			first, s.FirstSeq = ev.Time, ev.Seq
		}
		last, s.LastSeq = ev.Time, ev.Seq
	}
	s.Span = last - first
	return s, nil
}
