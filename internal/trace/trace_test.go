package trace_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hypertap/internal/auditors/goshd"
	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/guest"
	"hypertap/internal/hv"
	"hypertap/internal/inject"
	"hypertap/internal/trace"
	"hypertap/internal/vclock"
)

// record a short monitored session and return the trace bytes.
func recordSession(t *testing.T, poison bool) ([]byte, *hv.Machine) {
	t.Helper()
	m, err := hv.New(hv.Config{VCPUs: 2, MemBytes: 64 << 20, Guest: guest.Config{Seed: 12}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EnableMonitoring(intercept.Features{
		ProcessSwitch: true, ThreadSwitch: true, Syscalls: true, IO: true,
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, core.MaskAll)
	if err := m.EM().Register(rec, core.DeliverAsync, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Boot(); err != nil {
		t.Fatal(err)
	}
	if poison {
		var site guest.SiteID
		for _, s := range m.Kernel().Sites() {
			if s.Kind == guest.FaultMissingRelease && s.Path == guest.SysWrite {
				site = s.ID
				break
			}
		}
		plan, err := inject.NewPlan(inject.Fault{Site: site, Persistence: inject.Persistent}, m.Clock().Now)
		if err != nil {
			t.Fatal(err)
		}
		m.Kernel().SetFaultPlan(plan)
	}
	if _, err := m.Kernel().CreateProcess(&guest.ProcSpec{
		Comm: "w", UID: 1,
		Program: &guest.LoopProgram{Body: []guest.Step{
			guest.DoSyscall(guest.SysWrite, 1, 128),
			guest.Compute(time.Millisecond),
		}},
	}, nil); err != nil {
		t.Fatal(err)
	}
	dur := 2 * time.Second
	if poison {
		dur = 12 * time.Second
	}
	m.Run(dur)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	if rec.Count() == 0 {
		t.Fatal("nothing recorded")
	}
	return buf.Bytes(), m
}

func TestRecordReadRoundTrip(t *testing.T) {
	data, _ := recordSession(t, false)
	events, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	// Sequence numbers are monotone and timestamps nondecreasing per vCPU.
	lastTime := map[int]time.Duration{}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("sequence not monotone at %d", i)
		}
	}
	for _, ev := range events {
		if ev.Time < lastTime[ev.VCPU] {
			t.Fatalf("vcpu%d time went backwards", ev.VCPU)
		}
		lastTime[ev.VCPU] = ev.Time
	}
	// Syscall events kept their decoded payloads.
	var sawWrite bool
	for _, ev := range events {
		if ev.Type == core.EvSyscall && guest.Syscall(ev.SyscallNr) == guest.SysWrite {
			sawWrite = true
			if ev.SyscallArgs[1] != 128 {
				t.Fatalf("write args lost: %v", ev.SyscallArgs)
			}
			if ev.Regs.CR3 == 0 || ev.Regs.TR == 0 {
				t.Fatal("architectural snapshot lost")
			}
		}
	}
	if !sawWrite {
		t.Fatal("no write syscalls in trace")
	}
}

func TestEventRecordConversionExact(t *testing.T) {
	ev := core.Event{
		Type: core.EvSyscall, VCPU: 1, Seq: 42, Time: 123456 * time.Microsecond,
		SyscallNr: 4, SyscallArgs: [4]uint64{1, 2, 3, 4},
		VM: 3, Span: core.MintSpan(3, 42, 1),
	}
	ev.Regs.CR3 = 0x9000
	ev.Regs.TR = 0x801000
	ev.Regs.SetGPR(3, 7)
	rec := trace.FromEvent(&ev)
	back, err := rec.ToEvent()
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != ev.Type || back.Seq != ev.Seq || back.Time != ev.Time ||
		back.SyscallArgs != ev.SyscallArgs || back.Regs.CR3 != ev.Regs.CR3 ||
		back.Regs.GPR(3) != 7 {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, ev)
	}
	if back.VM != ev.VM || back.Span != ev.Span {
		t.Fatalf("fleet identity lost in round trip: vm %d span %v, want vm %d span %v",
			back.VM, back.Span, ev.VM, ev.Span)
	}
}

// scopedCollector is a VM-scoped auditor that tallies which VMs it saw.
type scopedCollector struct {
	scope core.VMScope
	seen  []core.VMID
}

func (c *scopedCollector) Name() string               { return "collector-" + c.scope.String() }
func (c *scopedCollector) Mask() core.EventMask       { return core.MaskAll }
func (c *scopedCollector) HandleEvent(ev *core.Event) { c.seen = append(c.seen, ev.VM) }
func (c *scopedCollector) VMScope() core.VMScope      { return c.scope }

// TestReplayRoutesVMScopes pins that a replayed multi-VM trace routes through
// VM-scoped subscriptions exactly as the live EM would: scoped auditors see
// only their VM, fleet-wide and unscoped auditors see everything.
func TestReplayRoutesVMScopes(t *testing.T) {
	var buf bytes.Buffer
	const n = 6
	for i := 0; i < n; i++ {
		vm := core.VMID(i % 2)
		ev := core.Event{
			Type: core.EvSyscall, Seq: uint64(i + 1),
			Time: time.Duration(i) * time.Millisecond,
			VM:   vm, Span: core.MintSpan(vm, uint64(i+1), 0),
		}
		rec := trace.FromEvent(&ev)
		b, err := json.Marshal(&rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}

	vm1 := &scopedCollector{scope: core.ScopeVM(1)}
	fleet := &scopedCollector{scope: core.ScopeFleet()}
	unscoped := &core.AuditorFunc{AuditorName: "plain", EventMask: core.MaskAll, Fn: func(ev *core.Event) {}}
	delivered, err := trace.Replay(bytes.NewReader(buf.Bytes()), vm1, fleet, unscoped)
	if err != nil {
		t.Fatal(err)
	}
	if want := n/2 + n + n; delivered != want {
		t.Fatalf("delivered %d events, want %d", delivered, want)
	}
	if len(vm1.seen) != n/2 {
		t.Fatalf("vm1-scoped auditor saw %d events, want %d", len(vm1.seen), n/2)
	}
	for _, vm := range vm1.seen {
		if vm != 1 {
			t.Fatalf("vm1-scoped auditor saw an event from vm%d", vm)
		}
	}
	if len(fleet.seen) != n {
		t.Fatalf("fleet-scoped auditor saw %d events, want %d", len(fleet.seen), n)
	}
}

func TestToEventUnknownType(t *testing.T) {
	rec := trace.Record{Type: "no-such-event"}
	if _, err := rec.ToEvent(); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestReadMalformed(t *testing.T) {
	if _, err := trace.Read(strings.NewReader("{broken")); err == nil {
		t.Fatal("malformed trace accepted")
	}
}

func TestReplayThroughAuditor(t *testing.T) {
	data, _ := recordSession(t, false)
	var syscalls int
	sink := &core.AuditorFunc{AuditorName: "sink", EventMask: core.MaskOf(core.EvSyscall),
		Fn: func(*core.Event) { syscalls++ }}
	delivered, err := trace.Replay(bytes.NewReader(data), sink)
	if err != nil {
		t.Fatal(err)
	}
	if delivered == 0 || syscalls == 0 {
		t.Fatalf("replay delivered %d / %d syscalls", delivered, syscalls)
	}
}

// TestOfflineHangDetection is the package's reason to exist: GOSHD, driven
// by a recorded trace and a replayed clock, finds the hang after the fact.
func TestOfflineHangDetection(t *testing.T) {
	data, m := recordSession(t, true)
	// Ground truth: the live VM really hung (switch counters stalled).
	_ = m

	clock := &vclock.Clock{}
	det, err := goshd.New(goshd.Config{Clock: clock, VCPUs: 2, Threshold: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	det.Start()
	if _, err := trace.ReplayWithClock(bytes.NewReader(data), clock, 0, det); err != nil {
		t.Fatal(err)
	}
	if len(det.Alarms()) == 0 {
		t.Fatal("offline GOSHD found no hang in a trace of a hung guest")
	}

	// Control: a healthy trace stays quiet offline.
	healthy, _ := recordSession(t, false)
	clock2 := &vclock.Clock{}
	det2, err := goshd.New(goshd.Config{Clock: clock2, VCPUs: 2, Threshold: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	det2.Start()
	if _, err := trace.ReplayWithClock(bytes.NewReader(healthy), clock2, 0, det2); err != nil {
		t.Fatal(err)
	}
	if len(det2.Alarms()) != 0 {
		t.Fatalf("offline false alarms on a healthy trace: %v", det2.Alarms())
	}
}

func TestSummarize(t *testing.T) {
	data, _ := recordSession(t, false)
	s, err := trace.Summarize(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if s.Events == 0 || s.Span <= 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.ByType["syscall"] == 0 || s.ByVCPU[0] == 0 {
		t.Fatalf("summary aggregation empty: %+v", s)
	}
	if s.Syscalls[uint32(guest.SysWrite)] == 0 {
		t.Fatal("write syscalls not aggregated")
	}
	if len(s.AddrSet) == 0 {
		t.Fatal("no address spaces observed")
	}
}

func TestRecorderMaskFilters(t *testing.T) {
	var buf bytes.Buffer
	rec := trace.NewRecorder(&buf, core.MaskOf(core.EvSyscall))
	if !rec.Mask().Has(core.EvSyscall) || rec.Mask().Has(core.EvHalt) {
		t.Fatal("mask wrong")
	}
	if rec.Name() == "" {
		t.Fatal("no name")
	}
}

func TestNewRecorderNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil writer accepted")
		}
	}()
	trace.NewRecorder(nil, core.MaskAll)
}
