package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of logarithmic latency buckets. Bucket 0 holds
// zero-duration observations; bucket b (b >= 1) holds durations in
// [2^(b-1), 2^b) nanoseconds. 40 buckets reach 2^39 ns ≈ 9.2 minutes,
// far beyond any handler latency this system produces; larger values clamp
// into the last bucket.
const histBuckets = 40

// Histogram is a log-bucketed latency histogram. Observe is lock-free and
// allocation-free: one atomic add on the bucket, one on the running sum,
// and a CAS loop for the max (which almost always exits on the first load).
// Precision is the price: within a bucket the distribution is assumed
// uniform, so quantile estimates carry up-to-2x bucket resolution — the
// standard trade for a fixed-size, mergeable hot-path histogram.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
}

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(ns uint64) int {
	b := bits.Len64(ns)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// bucketUpper is the exclusive upper bound of a bucket in nanoseconds.
func bucketUpper(b int) uint64 {
	if b == 0 {
		return 0
	}
	return 1 << b
}

// bucketLower is the inclusive lower bound of a bucket in nanoseconds.
func bucketLower(b int) uint64 {
	if b == 0 {
		return 0
	}
	return 1 << (b - 1)
}

// Observe records one duration. Negative durations count as zero.
//
//hypertap:hotpath
func (h *Histogram) Observe(d time.Duration) {
	v := uint64(0)
	if d > 0 {
		v = uint64(d)
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// absorb adds a snapshot's buckets into the live histogram (the
// Registry.Absorb path). Unlike Observe it is not a hot-path operation:
// it runs once per campaign unit, off the measured paths.
func (h *Histogram) absorb(s HistogramSnapshot) {
	for b, n := range s.Buckets {
		if b >= histBuckets {
			b = histBuckets - 1
		}
		if n > 0 {
			h.buckets[b].Add(n)
		}
	}
	h.sum.Add(uint64(s.Sum))
	v := uint64(s.Max)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Snapshot copies the histogram state. Name and Labels are filled by the
// Registry.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Buckets: make([]uint64, histBuckets),
		Sum:     time.Duration(h.sum.Load()),
		Max:     time.Duration(h.max.Load()),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		s.Buckets[i] = n
		s.Count += n
	}
	s.refreshQuantiles()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, mergeable with
// other snapshots of the same metric. P50/P90/P99 are precomputed for JSON
// consumers and kept current by Merge; Quantile serves arbitrary q.
type HistogramSnapshot struct {
	Name    string        `json:"name"`
	Labels  []Label       `json:"labels,omitempty"`
	Count   uint64        `json:"count"`
	Sum     time.Duration `json:"sum_ns"`
	Max     time.Duration `json:"max_ns"`
	P50     time.Duration `json:"p50_ns"`
	P90     time.Duration `json:"p90_ns"`
	P99     time.Duration `json:"p99_ns"`
	Buckets []uint64      `json:"buckets"`
}

// Mean returns the average observation.
func (s *HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket, clamped to the observed maximum.
func (s *HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for b, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo, hi := float64(bucketLower(b)), float64(bucketUpper(b))
			if max := float64(s.Max); hi > max && max >= lo {
				hi = max
			}
			est := lo + (hi-lo)*(rank-cum)/float64(n)
			return time.Duration(est)
		}
		cum = next
	}
	return s.Max
}

// Merge adds another snapshot of the same metric into s.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if len(s.Buckets) < len(o.Buckets) {
		grown := make([]uint64, len(o.Buckets))
		copy(grown, s.Buckets)
		s.Buckets = grown
	}
	for i, n := range o.Buckets {
		s.Buckets[i] += n
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.refreshQuantiles()
}

func (s *HistogramSnapshot) refreshQuantiles() {
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
}
