package telemetry

import (
	"testing"
	"time"
)

// TestRelabeledKeepsSeriesDistinct is the cluster-rollup collision
// regression: two hosts record the same series name, and absorbing both raw
// snapshots into one registry silently aliases them into a single counter.
// Relabeling with a host label keeps them distinct and the total auditable.
func TestRelabeledKeepsSeriesDistinct(t *testing.T) {
	h0, h1 := NewRegistry(), NewRegistry()
	h0.Counter("hypertap_em_published_total").Add(10)
	h1.Counter("hypertap_em_published_total").Add(32)

	// The collision, demonstrated: raw absorption folds both hosts into one
	// anonymous series.
	collided := NewRegistry()
	collided.Absorb(h0.Snapshot())
	collided.Absorb(h1.Snapshot())
	if got := collided.Counter("hypertap_em_published_total").Value(); got != 42 {
		t.Fatalf("raw absorb = %d, want 42 (both hosts aliased)", got)
	}
	if n := len(collided.Snapshot().Counters); n != 1 {
		t.Fatalf("raw absorb kept %d series, want 1 (the collision)", n)
	}

	// The fix: per-host labels separate the series; the per-host values stay
	// readable and the sum still reconstructs.
	fleet := NewRegistry()
	fleet.Absorb(h0.Snapshot().Relabeled(L("host", "h0")))
	fleet.Absorb(h1.Snapshot().Relabeled(L("host", "h1")))
	if got := fleet.Counter("hypertap_em_published_total", L("host", "h0")).Value(); got != 10 {
		t.Fatalf("h0 series = %d, want 10", got)
	}
	if got := fleet.Counter("hypertap_em_published_total", L("host", "h1")).Value(); got != 32 {
		t.Fatalf("h1 series = %d, want 32", got)
	}
}

// TestRelabeledCanonicalOrder pins that relabeling sorts into the same
// canonical label order a direct registration uses, so absorption lands on
// the identical series ID regardless of which side registered first.
func TestRelabeledCanonicalOrder(t *testing.T) {
	src := NewRegistry()
	src.Counter("m", L("vm", "vm0")).Add(7)
	src.Histogram("lat", L("vm", "vm0")).Observe(time.Millisecond)

	dst := NewRegistry()
	// Register first with labels in the canonical order relabel must match.
	pre := dst.Counter("m", L("host", "h9"), L("vm", "vm0"))
	dst.Absorb(src.Snapshot().Relabeled(L("host", "h9")))
	if got := pre.Value(); got != 7 {
		t.Fatalf("relabeled absorb missed the pre-registered series: %d, want 7", got)
	}
	if got := dst.Histogram("lat", L("host", "h9"), L("vm", "vm0")).Count(); got != 1 {
		t.Fatalf("relabeled histogram count = %d, want 1", got)
	}
}

// TestDeltaSince pins the periodic-rollup arithmetic: absorbing each
// interval's delta accumulates to the live total without double counting.
func TestDeltaSince(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	h := r.Histogram("lat")
	g := r.Gauge("depth")

	c.Add(5)
	h.Observe(2 * time.Millisecond)
	g.Set(3)
	s1 := r.Snapshot()

	c.Add(7)
	h.Observe(4 * time.Millisecond)
	g.Set(2)
	s2 := r.Snapshot()

	d := s2.DeltaSince(s1)
	if got := d.Counters[0].Value; got != 7 {
		t.Fatalf("counter delta = %d, want 7", got)
	}
	if got := d.Histograms[0].Count; got != 1 {
		t.Fatalf("histogram delta count = %d, want 1", got)
	}
	if got := d.Histograms[0].Sum; got != 4*time.Millisecond {
		t.Fatalf("histogram delta sum = %v, want 4ms", got)
	}
	// Gauges pass through the current instantaneous value.
	if got := d.Gauges[0].Value; got != 2 {
		t.Fatalf("gauge delta = %v, want 2 (current value)", got)
	}

	// The rollup identity: absorb(s1) then absorb(delta) == final totals.
	agg := NewRegistry()
	agg.Absorb(s1)
	agg.Absorb(d)
	if got := agg.Counter("events").Value(); got != 12 {
		t.Fatalf("rolled-up counter = %d, want 12", got)
	}
	if got := agg.Histogram("lat").Count(); got != 2 {
		t.Fatalf("rolled-up histogram count = %d, want 2", got)
	}

	// A series absent from prev reports whole.
	r.Counter("late").Add(9)
	d2 := r.Snapshot().DeltaSince(s2)
	var late uint64
	for _, cs := range d2.Counters {
		if cs.Name == "late" {
			late = cs.Value
		}
	}
	if late != 9 {
		t.Fatalf("new-series delta = %d, want 9", late)
	}
}
