package telemetry

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("events_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("depth")
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %v, want 2", got)
	}
	g.SetMax(1) // below current: no-op
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after SetMax(1) = %v, want 2", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge after SetMax(9) = %v, want 9", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("c", L("x", "1"))
	b := reg.Counter("c", L("x", "1"))
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := reg.Counter("c", L("x", "2"))
	if a == other {
		t.Fatal("different labels must return a different counter")
	}
	// Label order must not matter.
	h1 := reg.Histogram("h", L("a", "1"), L("b", "2"))
	h2 := reg.Histogram("h", L("b", "2"), L("a", "1"))
	if h1 != h2 {
		t.Fatal("label order must not change identity")
	}
}

func TestCounterFunc(t *testing.T) {
	reg := NewRegistry()
	n := uint64(0)
	reg.CounterFunc("produced_total", func() uint64 { return n })
	n = 7
	snap := reg.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 7 {
		t.Fatalf("snapshot = %+v, want produced_total=7", snap.Counters)
	}
	// The base counter still accumulates (Absorb, direct Add) and the
	// snapshot reports the sum.
	reg.Counter("produced_total").Add(3)
	if v := reg.Snapshot().Counters[0].Value; v != 10 {
		t.Fatalf("fn+base = %d, want 10", v)
	}
	// A kind collision is still caught.
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering a CounterFunc over a gauge")
		}
	}()
	reg.Gauge("g")
	reg.CounterFunc("g", func() uint64 { return 0 })
}

// TestCounterFuncMayTakeProducerLock pins the lock-order contract: the fn
// runs without the registry lock held, so a producer that registers metrics
// while holding its own lock can also expose a CounterFunc that takes it.
func TestCounterFuncMayTakeProducerLock(t *testing.T) {
	reg := NewRegistry()
	var mu sync.Mutex
	count := uint64(0)
	reg.CounterFunc("locked_total", func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		return count
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			mu.Lock()
			count++
			reg.Counter("other_total").Inc() // producer lock -> registry lock
			mu.Unlock()
		}
	}()
	for i := 0; i < 100; i++ {
		reg.Snapshot() // registry lock released before fn -> producer lock
	}
	<-done
	if v := reg.Snapshot().Counters[0].Value; v != 100 {
		t.Fatalf("locked_total = %d, want 100", v)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	reg.Gauge("m")
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations spread 1..1000 µs: p50 ≈ 500µs, p99 ≈ 990µs
	// within log-bucket (2x) resolution.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Max != 1000*time.Microsecond {
		t.Fatalf("max = %v, want 1ms", s.Max)
	}
	checkWithin := func(name string, got, want time.Duration) {
		t.Helper()
		if got < want/2 || got > want*2 {
			t.Errorf("%s = %v, want within 2x of %v", name, got, want)
		}
	}
	checkWithin("p50", s.Quantile(0.5), 500*time.Microsecond)
	checkWithin("p90", s.Quantile(0.9), 900*time.Microsecond)
	checkWithin("p99", s.Quantile(0.99), 990*time.Microsecond)
	if q := s.Quantile(1.0); q > s.Max {
		t.Errorf("p100 = %v exceeds max %v", q, s.Max)
	}
	if got := s.Mean(); got < 250*time.Microsecond || got > time.Millisecond {
		t.Errorf("mean = %v, want ~500µs", got)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 0 || s.Max != 0 {
		t.Fatalf("zero/negative handling: count=%d sum=%v max=%v", s.Count, s.Sum, s.Max)
	}
	if q := s.Quantile(0.99); q != 0 {
		t.Fatalf("quantile of all-zero histogram = %v, want 0", q)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 0; i < 100; i++ {
		a.Observe(time.Microsecond)
		b.Observe(time.Millisecond)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d, want 200", sa.Count)
	}
	if sa.Max != sb.Max {
		t.Fatalf("merged max = %v, want %v", sa.Max, sb.Max)
	}
	wantSum := 100*time.Microsecond + 100*time.Millisecond
	if sa.Sum != wantSum {
		t.Fatalf("merged sum = %v, want %v", sa.Sum, wantSum)
	}
	// Half the mass is ~1µs, half ~1ms: p90 must land in the upper mode.
	if p90 := sa.Quantile(0.9); p90 < 500*time.Microsecond {
		t.Fatalf("merged p90 = %v, want ≥ 500µs", p90)
	}
}

func TestSnapshotMergeAcrossRegistries(t *testing.T) {
	r1, r2 := NewRegistry(), NewRegistry()
	r1.Counter("shared").Add(3)
	r2.Counter("shared").Add(4)
	r2.Counter("only2").Add(7)
	r1.Gauge("hw").Set(2)
	r2.Gauge("hw").Set(5)
	r1.Histogram("lat").Observe(time.Millisecond)
	r2.Histogram("lat").Observe(3 * time.Millisecond)

	s := r1.Snapshot()
	s.Merge(r2.Snapshot())
	byName := map[string]uint64{}
	for _, c := range s.Counters {
		byName[c.Name] = c.Value
	}
	if byName["shared"] != 7 || byName["only2"] != 7 {
		t.Fatalf("merged counters = %v", byName)
	}
	if s.Gauges[0].Value != 5 {
		t.Fatalf("merged gauge = %v, want max 5", s.Gauges[0].Value)
	}
	if s.Histograms[0].Count != 2 || s.Histograms[0].Max != 3*time.Millisecond {
		t.Fatalf("merged histogram: count=%d max=%v", s.Histograms[0].Count, s.Histograms[0].Max)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hypertap_events_published_total").Add(42)
	reg.Histogram("hypertap_auditor_handle_seconds", L("auditor", "goshd")).Observe(time.Microsecond)
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Counters) != 1 || back.Counters[0].Value != 42 {
		t.Fatalf("counters after round trip: %+v", back.Counters)
	}
	if len(back.Histograms) != 1 || back.Histograms[0].Count != 1 {
		t.Fatalf("histograms after round trip: %+v", back.Histograms)
	}
	if back.Histograms[0].Labels[0] != L("auditor", "goshd") {
		t.Fatalf("labels after round trip: %+v", back.Histograms[0].Labels)
	}
}

func TestConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	h := reg.Histogram("lat")
	g := reg.Gauge("hw")
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(time.Duration(i%1000) * time.Nanosecond)
				g.SetMax(float64(w*per + i))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per-1 {
		t.Fatalf("high-water gauge = %v, want %d", got, workers*per-1)
	}
}
