// Package httpexport serves a telemetry.Registry over HTTP: Prometheus text
// exposition on /metrics, a JSON snapshot on /metrics.json, and a liveness
// probe on /healthz.
//
// The health probe closes the paper's self-monitoring loop: when the
// endpoint is backed by the Remote Health Checker (core.RHCServer.Health),
// a stalled heartbeat stream — the signature of a dead or wedged monitoring
// stack — flips /healthz to 503, so the same invariant the RHC enforces
// over TCP is visible to any off-the-shelf prober.
package httpexport

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"hypertap/internal/telemetry"
)

// Health reports the monitoring stack's liveness; nil error means healthy.
// A nil Health func is treated as always healthy.
type Health func() error

// Handler returns an http.Handler serving /metrics, /metrics.json and
// /healthz for the registry.
func Handler(reg *telemetry.Registry, health Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, reg.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if health != nil {
			if err := health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "degraded: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry endpoint on addr (e.g. "127.0.0.1:0").
func Serve(addr string, reg *telemetry.Registry, health Health) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpexport: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(reg, health), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// promLabels renders a label set (plus optional extra label) in Prometheus
// syntax, including the braces; empty when there are no labels.
func promLabels(labels []telemetry.Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm writes a snapshot in the Prometheus text exposition format.
// Histograms are exported as summaries (p50/p90/p99 quantiles, _sum and
// _count) plus a companion <name>_max gauge, with durations in seconds.
func WriteProm(w io.Writer, snap telemetry.Snapshot) {
	sort.SliceStable(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.SliceStable(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.SliceStable(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })

	family := ""
	for _, c := range snap.Counters {
		if c.Name != family {
			family = c.Name
			fmt.Fprintf(w, "# TYPE %s counter\n", c.Name)
		}
		fmt.Fprintf(w, "%s%s %d\n", c.Name, promLabels(c.Labels, "", ""), c.Value)
	}
	family = ""
	for _, g := range snap.Gauges {
		if g.Name != family {
			family = g.Name
			fmt.Fprintf(w, "# TYPE %s gauge\n", g.Name)
		}
		fmt.Fprintf(w, "%s%s %g\n", g.Name, promLabels(g.Labels, "", ""), g.Value)
	}
	family = ""
	for _, h := range snap.Histograms {
		if h.Name != family {
			family = h.Name
			fmt.Fprintf(w, "# TYPE %s summary\n", h.Name)
		}
		for _, q := range []struct {
			label string
			v     time.Duration
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			fmt.Fprintf(w, "%s%s %g\n", h.Name, promLabels(h.Labels, "quantile", q.label), q.v.Seconds())
		}
		fmt.Fprintf(w, "%s_sum%s %g\n", h.Name, promLabels(h.Labels, "", ""), h.Sum.Seconds())
		fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", ""), h.Count)
	}
	family = ""
	for _, h := range snap.Histograms {
		if h.Name != family {
			family = h.Name
			fmt.Fprintf(w, "# TYPE %s_max gauge\n", h.Name)
		}
		fmt.Fprintf(w, "%s_max%s %g\n", h.Name, promLabels(h.Labels, "", ""), h.Max.Seconds())
	}
}
