// Package httpexport serves a telemetry.Registry over HTTP: Prometheus text
// exposition on /metrics, a JSON snapshot on /metrics.json, and a liveness
// probe on /healthz.
//
// The health probe closes the paper's self-monitoring loop: when the
// endpoint is backed by the Remote Health Checker (core.RHCServer.Health),
// a stalled heartbeat stream — the signature of a dead or wedged monitoring
// stack — flips /healthz to 503, so the same invariant the RHC enforces
// over TCP is visible to any off-the-shelf prober.
//
// With Options the endpoint also exposes the tracing plane: /flight drains
// the flight recorder's rings as JSON (the live sibling of an incident
// bundle), and /debug/pprof/ mounts the standard Go profiler so the hot
// path can be profiled on a running deployment.
package httpexport

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"hypertap/internal/core"
	"hypertap/internal/telemetry"
)

// Health reports the monitoring stack's liveness; nil error means healthy.
// A nil Health func is treated as always healthy.
type Health func() error

// Options configures an extended endpoint. The zero value serves nothing
// useful; set at least Registry.
type Options struct {
	// Registry backs /metrics and /metrics.json.
	Registry *telemetry.Registry
	// Health backs /healthz; nil means always healthy.
	Health Health
	// EM, when set, exposes its flight recorder on /flight: the whole
	// table, or one VM's ring with ?vm=N. 404 when tracing is off.
	EM *core.Multiplexer
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
}

// Handler returns an http.Handler serving /metrics, /metrics.json and
// /healthz for the registry.
func Handler(reg *telemetry.Registry, health Health) http.Handler {
	return HandlerOptions(Options{Registry: reg, Health: health})
}

// HandlerOptions returns an http.Handler for the full option set.
func HandlerOptions(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, o.Registry.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.Registry.Snapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if o.Health != nil {
			if err := o.Health(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "degraded: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	if o.EM != nil {
		mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
			serveFlight(w, r, o.EM)
		})
	}
	if o.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// flightExitJSON is the debug-drain rendering of one core.FlightExit:
// identities as hex strings, masks as integers, the type by name.
type flightExitJSON struct {
	Span    string `json:"span"`
	TimeNS  int64  `json:"time_ns"`
	Type    string `json:"type"`
	VCPU    uint8  `json:"vcpu"`
	Digest  string `json:"digest"`
	Sync    uint64 `json:"sync_mask"`
	Queued  uint64 `json:"queued_mask"`
	Dropped uint64 `json:"dropped_mask"`
	Reason  uint8  `json:"exit_reason,omitempty"`
}

// flightSpanJSON is the debug-drain rendering of one core.SpanRecord.
type flightSpanJSON struct {
	Span   string `json:"span"`
	TimeNS int64  `json:"time_ns"`
	VM     uint16 `json:"vm"`
	Phase  string `json:"phase"`
	Actor  string `json:"actor"`
}

// flightVMJSON is one VM's ring in the drain.
type flightVMJSON struct {
	ID       int              `json:"id"`
	Name     string           `json:"name"`
	Recorded uint64           `json:"recorded"`
	Exits    []flightExitJSON `json:"exits"`
}

// flightJSON is the /flight response body.
type flightJSON struct {
	Armed    bool             `json:"armed"`
	Depth    int              `json:"depth"`
	VMs      []flightVMJSON   `json:"vms"`
	Overflow []flightExitJSON `json:"overflow,omitempty"`
	Spans    []flightSpanJSON `json:"spans,omitempty"`
}

func renderExits(exits []core.FlightExit) []flightExitJSON {
	out := make([]flightExitJSON, len(exits))
	for i, e := range exits {
		out[i] = flightExitJSON{
			Span:    fmt.Sprintf("%#x", uint64(e.Span)),
			TimeNS:  e.TimeNS,
			Type:    e.Type.String(),
			VCPU:    e.VCPU,
			Digest:  fmt.Sprintf("%#x", e.Digest),
			Sync:    e.Sync,
			Queued:  e.Queued,
			Dropped: e.Dropped,
			Reason:  e.Reason,
		}
	}
	return out
}

// serveFlight drains the EM's flight recorder as JSON: every attached VM's
// ring, or one VM's with ?vm=N.
func serveFlight(w http.ResponseWriter, r *http.Request, em *core.Multiplexer) {
	fl := em.Flight()
	if fl == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	vms := em.VMs()
	if len(vms) == 0 {
		// A bare EM publishes everything as VM 0; give the drain one row.
		vms = []string{"vm0"}
	}
	resp := flightJSON{Armed: fl.Armed(), Depth: fl.Depth()}
	if q := r.URL.Query().Get("vm"); q != "" {
		id, err := strconv.Atoi(q)
		if err != nil || id < 0 {
			http.Error(w, "bad vm parameter", http.StatusBadRequest)
			return
		}
		if id >= len(vms) {
			http.Error(w, "no such VM", http.StatusNotFound)
			return
		}
		resp.VMs = []flightVMJSON{{
			ID:       id,
			Name:     vms[id],
			Recorded: em.FlightRecorded(core.VMID(id)),
			Exits:    renderExits(em.FlightExits(core.VMID(id))),
		}}
	} else {
		for id, name := range vms {
			resp.VMs = append(resp.VMs, flightVMJSON{
				ID:       id,
				Name:     name,
				Recorded: em.FlightRecorded(core.VMID(id)),
				Exits:    renderExits(em.FlightExits(core.VMID(id))),
			})
		}
		resp.Overflow = renderExits(em.FlightOverflow())
		actors := em.ActorNames()
		for _, s := range em.FlightSpans() {
			actor := fmt.Sprintf("actor%d", s.Actor)
			if int(s.Actor) < len(actors) {
				actor = actors[s.Actor]
			}
			resp.Spans = append(resp.Spans, flightSpanJSON{
				Span:   fmt.Sprintf("%#x", uint64(s.Span)),
				TimeNS: s.TimeNS,
				VM:     uint16(s.VM),
				Phase:  s.Phase.String(),
				Actor:  actor,
			})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// Server is a running telemetry endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry endpoint on addr (e.g. "127.0.0.1:0").
func Serve(addr string, reg *telemetry.Registry, health Health) (*Server, error) {
	return ServeOptions(addr, Options{Registry: reg, Health: health})
}

// ServeOptions starts the extended endpoint on addr.
func ServeOptions(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("httpexport: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: HandlerOptions(o), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// promLabels renders a label set (plus optional extra label) in Prometheus
// syntax, including the braces; empty when there are no labels.
func promLabels(labels []telemetry.Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm writes a snapshot in the Prometheus text exposition format.
// Histograms are exported as summaries (p50/p90/p99 quantiles, _sum and
// _count) plus a companion <name>_max gauge, with durations in seconds.
func WriteProm(w io.Writer, snap telemetry.Snapshot) {
	sort.SliceStable(snap.Counters, func(i, j int) bool { return snap.Counters[i].Name < snap.Counters[j].Name })
	sort.SliceStable(snap.Gauges, func(i, j int) bool { return snap.Gauges[i].Name < snap.Gauges[j].Name })
	sort.SliceStable(snap.Histograms, func(i, j int) bool { return snap.Histograms[i].Name < snap.Histograms[j].Name })

	family := ""
	for _, c := range snap.Counters {
		if c.Name != family {
			family = c.Name
			fmt.Fprintf(w, "# TYPE %s counter\n", c.Name)
		}
		fmt.Fprintf(w, "%s%s %d\n", c.Name, promLabels(c.Labels, "", ""), c.Value)
	}
	family = ""
	for _, g := range snap.Gauges {
		if g.Name != family {
			family = g.Name
			fmt.Fprintf(w, "# TYPE %s gauge\n", g.Name)
		}
		fmt.Fprintf(w, "%s%s %g\n", g.Name, promLabels(g.Labels, "", ""), g.Value)
	}
	family = ""
	for _, h := range snap.Histograms {
		if h.Name != family {
			family = h.Name
			fmt.Fprintf(w, "# TYPE %s summary\n", h.Name)
		}
		for _, q := range []struct {
			label string
			v     time.Duration
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			fmt.Fprintf(w, "%s%s %g\n", h.Name, promLabels(h.Labels, "quantile", q.label), q.v.Seconds())
		}
		fmt.Fprintf(w, "%s_sum%s %g\n", h.Name, promLabels(h.Labels, "", ""), h.Sum.Seconds())
		fmt.Fprintf(w, "%s_count%s %d\n", h.Name, promLabels(h.Labels, "", ""), h.Count)
	}
	family = ""
	for _, h := range snap.Histograms {
		if h.Name != family {
			family = h.Name
			fmt.Fprintf(w, "# TYPE %s_max gauge\n", h.Name)
		}
		fmt.Fprintf(w, "%s_max%s %g\n", h.Name, promLabels(h.Labels, "", ""), h.Max.Seconds())
	}
}
