package httpexport

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hypertap/internal/telemetry"
)

func testRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.Counter("hypertap_events_published_total").Add(1234)
	reg.Counter("hypertap_vm_exits_total", telemetry.L("reason", "CR_ACCESS")).Add(7)
	reg.Counter("hypertap_vm_exits_total", telemetry.L("reason", "WRMSR")).Add(3)
	reg.Gauge("hypertap_async_queue_depth").Set(5)
	h := reg.Histogram("hypertap_auditor_handle_seconds", telemetry.L("auditor", "goshd"))
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	return reg
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.String()
}

func TestMetricsEndpointPromFormat(t *testing.T) {
	h := Handler(testRegistry(), nil)
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE hypertap_events_published_total counter",
		"hypertap_events_published_total 1234",
		`hypertap_vm_exits_total{reason="CR_ACCESS"} 7`,
		"# TYPE hypertap_async_queue_depth gauge",
		"hypertap_async_queue_depth 5",
		"# TYPE hypertap_auditor_handle_seconds summary",
		`hypertap_auditor_handle_seconds{auditor="goshd",quantile="0.5"}`,
		`hypertap_auditor_handle_seconds{auditor="goshd",quantile="0.99"}`,
		`hypertap_auditor_handle_seconds_count{auditor="goshd"} 100`,
		`hypertap_auditor_handle_seconds_sum{auditor="goshd"}`,
		"# TYPE hypertap_auditor_handle_seconds_max gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}
	// TYPE headers must not repeat within a family.
	if n := strings.Count(body, "# TYPE hypertap_vm_exits_total counter"); n != 1 {
		t.Errorf("TYPE line for hypertap_vm_exits_total appears %d times", n)
	}
}

func TestMetricsJSONEndpoint(t *testing.T) {
	h := Handler(testRegistry(), nil)
	code, body := get(t, h, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics.json = %d", code)
	}
	if !strings.Contains(body, `"hypertap_events_published_total"`) || !strings.Contains(body, `"p99_ns"`) {
		t.Errorf("unexpected /metrics.json body:\n%s", body)
	}
}

func TestHealthzHealthyAndDegraded(t *testing.T) {
	reg := telemetry.NewRegistry()
	code, body := get(t, Handler(reg, nil), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("nil health: %d %q", code, body)
	}
	healthy := true
	h := Handler(reg, func() error {
		if healthy {
			return nil
		}
		return errors.New("vm0 heartbeat stalled")
	})
	if code, _ := get(t, h, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthy probe = %d", code)
	}
	healthy = false
	code, body = get(t, h, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded probe = %d, want 503", code)
	}
	if !strings.Contains(body, "heartbeat stalled") {
		t.Fatalf("degraded body = %q", body)
	}
}

func TestServeOverTCP(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "hypertap_events_published_total") {
		t.Fatalf("live /metrics: %d %q", resp.StatusCode, body)
	}
}
