package httpexport

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/guest"
	"hypertap/internal/host"
	"hypertap/internal/telemetry"
)

func testRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.Counter("hypertap_events_published_total").Add(1234)
	reg.Counter("hypertap_vm_exits_total", telemetry.L("reason", "CR_ACCESS")).Add(7)
	reg.Counter("hypertap_vm_exits_total", telemetry.L("reason", "WRMSR")).Add(3)
	reg.Gauge("hypertap_async_queue_depth").Set(5)
	h := reg.Histogram("hypertap_auditor_handle_seconds", telemetry.L("auditor", "goshd"))
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	return reg
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.String()
}

func TestMetricsEndpointPromFormat(t *testing.T) {
	h := Handler(testRegistry(), nil)
	code, body := get(t, h, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE hypertap_events_published_total counter",
		"hypertap_events_published_total 1234",
		`hypertap_vm_exits_total{reason="CR_ACCESS"} 7`,
		"# TYPE hypertap_async_queue_depth gauge",
		"hypertap_async_queue_depth 5",
		"# TYPE hypertap_auditor_handle_seconds summary",
		`hypertap_auditor_handle_seconds{auditor="goshd",quantile="0.5"}`,
		`hypertap_auditor_handle_seconds{auditor="goshd",quantile="0.99"}`,
		`hypertap_auditor_handle_seconds_count{auditor="goshd"} 100`,
		`hypertap_auditor_handle_seconds_sum{auditor="goshd"}`,
		"# TYPE hypertap_auditor_handle_seconds_max gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\nbody:\n%s", want, body)
		}
	}
	// TYPE headers must not repeat within a family.
	if n := strings.Count(body, "# TYPE hypertap_vm_exits_total counter"); n != 1 {
		t.Errorf("TYPE line for hypertap_vm_exits_total appears %d times", n)
	}
}

func TestMetricsJSONEndpoint(t *testing.T) {
	h := Handler(testRegistry(), nil)
	code, body := get(t, h, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics.json = %d", code)
	}
	if !strings.Contains(body, `"hypertap_events_published_total"`) || !strings.Contains(body, `"p99_ns"`) {
		t.Errorf("unexpected /metrics.json body:\n%s", body)
	}
}

func TestHealthzHealthyAndDegraded(t *testing.T) {
	reg := telemetry.NewRegistry()
	code, body := get(t, Handler(reg, nil), "/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("nil health: %d %q", code, body)
	}
	healthy := true
	h := Handler(reg, func() error {
		if healthy {
			return nil
		}
		return errors.New("vm0 heartbeat stalled")
	})
	if code, _ := get(t, h, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthy probe = %d", code)
	}
	healthy = false
	code, body = get(t, h, "/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded probe = %d, want 503", code)
	}
	if !strings.Contains(body, "heartbeat stalled") {
		t.Fatalf("degraded body = %q", body)
	}
}

func TestServeOverTCP(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", testRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Close() }()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "hypertap_events_published_total") {
		t.Fatalf("live /metrics: %d %q", resp.StatusCode, body)
	}
}

// multiVMHost boots a two-VM host with telemetry, flight tracing and a
// shared RHC connection, runs it briefly, and hands back the pieces.
func multiVMHost(t *testing.T) (*host.Host, *core.RHCServer, *telemetry.Registry) {
	t.Helper()
	srv, err := core.NewRHCServer("127.0.0.1:0", 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	reg := telemetry.NewRegistry()
	feat := intercept.Features{ProcessSwitch: true, ThreadSwitch: true, Syscalls: true, IO: true}
	h, err := host.New(host.Config{
		Name: "export-host",
		VMs: []host.VMSpec{
			{Name: "vm-a", Guest: guest.Config{Seed: 5}, Monitor: true, Features: feat},
			{Name: "vm-b", Guest: guest.Config{Seed: 6}, Monitor: true, Features: feat},
		},
		Telemetry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.ConnectRHC(srv.Addr(), 16); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	if err := h.Boot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < h.NumVMs(); i++ {
		if _, err := h.Machine(i).Kernel().CreateProcess(&guest.ProcSpec{
			Comm: "w", UID: 1000,
			Program: &guest.LoopProgram{Body: []guest.Step{
				guest.DoSyscall(guest.SysGetPID),
				guest.Compute(time.Millisecond),
			}},
		}, nil); err != nil {
			t.Fatal(err)
		}
	}
	h.Run(200 * time.Millisecond)
	return h, srv, reg
}

// TestMultiVMHostEndpoint drives the full endpoint against a live two-VM
// host: per-VM metric labels, RHC-backed health that degrades when one VM
// goes silent, the /flight debug drain, and the pprof mount.
func TestMultiVMHostEndpoint(t *testing.T) {
	h, srv, reg := multiVMHost(t)
	if _, ok := srv.WaitHeartbeat("vm-a", 2*time.Second); !ok {
		t.Fatal("no heartbeats from vm-a")
	}
	if _, ok := srv.WaitHeartbeat("vm-b", 2*time.Second); !ok {
		t.Fatal("no heartbeats from vm-b")
	}
	handler := HandlerOptions(Options{Registry: reg, Health: srv.Health, EM: h.EM(), Pprof: true})

	// Both VMs beating: healthy.
	if code, body := get(t, handler, "/healthz"); code != http.StatusOK {
		t.Fatalf("healthy fleet: /healthz = %d %q", code, body)
	}
	// Per-VM labeled series from the shared EM.
	_, body := get(t, handler, "/metrics")
	for _, want := range []string{
		`hypertap_events_published_total{vm="vm-a"}`,
		`hypertap_events_published_total{vm="vm-b"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Flight drain: both rings populated, spans present, filters work.
	code, body := get(t, handler, "/flight")
	if code != http.StatusOK {
		t.Fatalf("/flight = %d", code)
	}
	var drain struct {
		Armed bool `json:"armed"`
		VMs   []struct {
			Name     string `json:"name"`
			Recorded uint64 `json:"recorded"`
			Exits    []struct {
				Type string `json:"type"`
				Span string `json:"span"`
			} `json:"exits"`
		} `json:"vms"`
		Spans []struct {
			Phase string `json:"phase"`
		} `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &drain); err != nil {
		t.Fatalf("/flight is not JSON: %v", err)
	}
	if !drain.Armed || len(drain.VMs) != 2 {
		t.Fatalf("drain armed=%v vms=%d, want armed 2-VM table", drain.Armed, len(drain.VMs))
	}
	for _, vm := range drain.VMs {
		if vm.Recorded == 0 || len(vm.Exits) == 0 {
			t.Fatalf("VM %s ring is empty in the drain", vm.Name)
		}
	}
	if len(drain.Spans) == 0 {
		t.Fatal("drain carries no spans")
	}
	if code, body := get(t, handler, "/flight?vm=1"); code != http.StatusOK || !strings.Contains(body, "vm-b") || strings.Contains(body, "vm-a") {
		t.Fatalf("/flight?vm=1 = %d, want only vm-b (body %q)", code, body)
	}
	if code, _ := get(t, handler, "/flight?vm=9"); code != http.StatusNotFound {
		t.Fatalf("/flight?vm=9 = %d, want 404", code)
	}
	if code, _ := get(t, handler, "/flight?vm=x"); code != http.StatusBadRequest {
		t.Fatalf("/flight?vm=x = %d, want 400", code)
	}
	if code, _ := get(t, handler, "/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	// One VM wedges while its neighbor keeps beating: the shared health
	// probe degrades and names the sick VM.
	h.Machine(0).PauseVM()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				h.Run(50 * time.Millisecond)
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()
	defer func() { close(stop); <-done }()
	deadline := time.Now().Add(3 * time.Second)
	for {
		code, body := get(t, handler, "/healthz")
		if code == http.StatusServiceUnavailable {
			if !strings.Contains(body, "vm-a") {
				t.Fatalf("degraded /healthz does not name the sick VM: %q", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/healthz never degraded after vm-a went silent")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
