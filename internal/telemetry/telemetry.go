// Package telemetry is the monitoring stack's own instrumentation: a
// zero-dependency (stdlib-only) metrics registry with atomic counters,
// gauges and log-bucketed latency histograms.
//
// HyperTap's central argument is that a monitor must itself be monitorable —
// the Remote Health Checker exists because "who monitors the monitor"
// matters. This package extends that argument from liveness to performance:
// every load-bearing path (event multiplexing, exit dispatch, auditor
// policy checks) records into a Registry whose snapshots are exported as
// JSON or Prometheus text (see telemetry/httpexport).
//
// Design constraints, in order:
//
//  1. The hot-path record is lock-free: Counter.Inc and Gauge.Set are a
//     single atomic op, Histogram.Observe is a handful, and none of them
//     allocate. Instrumenting a path that fires per VM Exit must not
//     perturb the measurement.
//  2. Metric registration (Registry.Counter etc.) takes a lock and may
//     allocate; it happens at subscription/boot time, never per event.
//  3. Snapshots are plain values: mergeable, JSON-marshalable, and safe to
//     take while writers are recording.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {auditor goshd}.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing uint64. The zero value is ready to
// use, but counters obtained from a Registry are exported.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. A single atomic add: safe on any hot path.
//
//hypertap:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
//
//hypertap:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (queue depth, heartbeat age).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. A single atomic store.
//
//hypertap:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetMax raises the gauge to v if v exceeds the current value — the
// high-water-mark update.
//
//hypertap:hotpath
func (g *Gauge) SetMax(v float64) {
	for {
		cur := g.bits.Load()
		if v <= math.Float64frombits(cur) {
			return
		}
		if g.bits.CompareAndSwap(cur, math.Float64bits(v)) {
			return
		}
	}
}

// Add increments the gauge by delta (may be negative).
//
//hypertap:hotpath
func (g *Gauge) Add(delta float64) {
	for {
		cur := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(cur) + delta)
		if g.bits.CompareAndSwap(cur, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", uint8(k))
	}
}

// entry is one registered metric.
type entry struct {
	name   string
	labels []Label
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	// counterFn, when set on a kindCounter entry, is read at snapshot time
	// and added to the base counter's value; see CounterFunc.
	counterFn func() uint64
}

// Registry holds named metrics. Lookups (Counter, Gauge, Histogram) are
// get-or-create and idempotent: asking twice for the same name+labels
// returns the same instrument, so independent components can share series.
// Asking for an existing name+labels with a different kind panics — that is
// a programming error, caught at registration time, never on the hot path.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
	order   []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// metricID renders the canonical identity: name plus sorted labels.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup finds or creates the entry for name+labels with the given kind.
func (r *Registry) lookup(name string, kind metricKind, labels []Label) *entry {
	if name == "" {
		panic("telemetry: metric name must not be empty")
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	id := metricID(name, sorted)

	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[id]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s already registered as %v, requested as %v", id, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, labels: sorted, kind: kind}
	switch kind {
	case kindCounter:
		e.counter = &Counter{}
	case kindGauge:
		e.gauge = &Gauge{}
	case kindHistogram:
		e.hist = &Histogram{}
	}
	r.entries[id] = e
	r.order = append(r.order, id)
	return e
}

// Counter returns the counter registered under name+labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, kindCounter, labels).counter
}

// Gauge returns the gauge registered under name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, kindGauge, labels).gauge
}

// Histogram returns the histogram registered under name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, kindHistogram, labels).hist
}

// CounterFunc backs the counter registered under name+labels with fn,
// evaluated at snapshot time. It is for monotonic totals a producer already
// maintains under its own lock: instead of paying an atomic add per event
// on the producer's hot path, the cost moves to the (rare) scrape, and the
// scraped value is exact rather than lagging. fn must be safe to call from
// any goroutine and is invoked without the registry lock held, so it may
// take the producer's lock. The series keeps its base Counter: Absorb and
// direct Inc/Add still accumulate there, and snapshots report the sum of
// both — a fresh fn replaces any previous one.
func (r *Registry) CounterFunc(name string, fn func() uint64, labels ...Label) {
	if fn == nil {
		panic("telemetry: CounterFunc with nil fn")
	}
	e := r.lookup(name, kindCounter, labels)
	r.mu.Lock()
	e.counterFn = fn
	r.mu.Unlock()
}

// CounterSnapshot is one counter's point-in-time value.
type CounterSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  uint64  `json:"value"`
}

// GaugeSnapshot is one gauge's point-in-time value.
type GaugeSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Snapshot is a consistent-enough copy of every registered metric: each
// individual value is read atomically; the set is read under the registry
// lock. Snapshots marshal to JSON directly and merge with Merge.
type Snapshot struct {
	Counters   []CounterSnapshot   `json:"counters,omitempty"`
	Gauges     []GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms []HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric, in registration order. The entry set and
// any counter fns are copied under the registry lock, then values are read
// outside it: instruments are atomics, and CounterFunc fns may take their
// producer's lock — which that producer may hold while registering metrics,
// so calling fns under the registry lock would invert the lock order.
func (r *Registry) Snapshot() Snapshot {
	type plan struct {
		e  *entry
		fn func() uint64
	}
	r.mu.Lock()
	plans := make([]plan, 0, len(r.order))
	for _, id := range r.order {
		e := r.entries[id]
		plans = append(plans, plan{e: e, fn: e.counterFn})
	}
	r.mu.Unlock()

	var s Snapshot
	for _, p := range plans {
		e := p.e
		switch e.kind {
		case kindCounter:
			v := e.counter.Value()
			if p.fn != nil {
				v += p.fn()
			}
			s.Counters = append(s.Counters, CounterSnapshot{Name: e.name, Labels: e.labels, Value: v})
		case kindGauge:
			s.Gauges = append(s.Gauges, GaugeSnapshot{Name: e.name, Labels: e.labels, Value: e.gauge.Value()})
		case kindHistogram:
			hs := e.hist.Snapshot()
			hs.Name = e.name
			hs.Labels = e.labels
			s.Histograms = append(s.Histograms, hs)
		}
	}
	return s
}

// Absorb folds a snapshot into the registry's live instruments: counters
// add the snapshot's value, gauges rise to it (high-water semantics, the
// same choice Merge makes), histograms add its buckets. The intended use is
// sharded campaigns: each work unit records into its own registry, and the
// engine absorbs the unit's snapshot — a pure delta, since the shard was
// fresh — into a live registry that an HTTP exporter is serving, so
// /metrics shows campaign totals growing while the run is in flight.
func (r *Registry) Absorb(s Snapshot) {
	for _, c := range s.Counters {
		r.Counter(c.Name, c.Labels...).Add(c.Value)
	}
	for _, g := range s.Gauges {
		r.Gauge(g.Name, g.Labels...).SetMax(g.Value)
	}
	for _, h := range s.Histograms {
		r.Histogram(h.Name, h.Labels...).absorb(h)
	}
}

// relabel returns labels plus extra in canonical (key-sorted) order — the
// same order lookup uses, so a relabeled snapshot absorbed into a registry
// lands on the series a direct registration with those labels would hit.
func relabel(labels []Label, extra []Label) []Label {
	merged := make([]Label, 0, len(labels)+len(extra))
	merged = append(merged, labels...)
	merged = append(merged, extra...)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	return merged
}

// Relabeled returns a copy of s with extra appended to every series' labels.
// It is the cluster rollup's namespace discipline: per-host registries record
// the same series names (hypertap_em_published_total, per-VM rollups, ...),
// and stamping {host=hN} onto each host's snapshot before absorbing keeps the
// fleet registry collision-free — two hosts' counters sum into distinct
// series instead of silently aliasing.
func (s Snapshot) Relabeled(extra ...Label) Snapshot {
	if len(extra) == 0 {
		return s
	}
	out := Snapshot{}
	for _, c := range s.Counters {
		c.Labels = relabel(c.Labels, extra)
		out.Counters = append(out.Counters, c)
	}
	for _, g := range s.Gauges {
		g.Labels = relabel(g.Labels, extra)
		out.Gauges = append(out.Gauges, g)
	}
	for _, h := range s.Histograms {
		h.Labels = relabel(h.Labels, extra)
		h.Buckets = append([]uint64(nil), h.Buckets...)
		out.Histograms = append(out.Histograms, h)
	}
	return out
}

// DeltaSince returns s minus prev, series-wise: counters and histogram
// buckets subtract (saturating at zero, so a reset series re-reports its
// full value rather than wrapping), gauges pass through current (an
// instantaneous value has no meaningful delta), and series absent from prev
// report whole. Periodic rollups absorb the delta each interval, so a live
// aggregate registry shows running totals without double-counting.
func (s Snapshot) DeltaSince(prev Snapshot) Snapshot {
	pc := make(map[string]uint64, len(prev.Counters))
	for _, c := range prev.Counters {
		pc[metricID(c.Name, c.Labels)] = c.Value
	}
	ph := make(map[string]*HistogramSnapshot, len(prev.Histograms))
	for i := range prev.Histograms {
		h := &prev.Histograms[i]
		ph[metricID(h.Name, h.Labels)] = h
	}
	out := Snapshot{Gauges: append([]GaugeSnapshot(nil), s.Gauges...)}
	for _, c := range s.Counters {
		if was, ok := pc[metricID(c.Name, c.Labels)]; ok && was <= c.Value {
			c.Value -= was
		}
		out.Counters = append(out.Counters, c)
	}
	for _, h := range s.Histograms {
		h.Buckets = append([]uint64(nil), h.Buckets...)
		if was, ok := ph[metricID(h.Name, h.Labels)]; ok && was.Count <= h.Count {
			h.Count -= was.Count
			if was.Sum <= h.Sum {
				h.Sum -= was.Sum
			}
			for i, n := range was.Buckets {
				if i < len(h.Buckets) && n <= h.Buckets[i] {
					h.Buckets[i] -= n
				}
			}
			h.refreshQuantiles()
		}
		out.Histograms = append(out.Histograms, h)
	}
	return out
}

// Merge folds other into s: counters and histograms with identical
// name+labels are summed; gauges take the maximum (the conservative choice
// for depth/high-water gauges); series unique to other are appended. Use it
// to aggregate per-VM registries from a campaign into one report.
func (s *Snapshot) Merge(other Snapshot) {
	cidx := make(map[string]int, len(s.Counters))
	for i, c := range s.Counters {
		cidx[metricID(c.Name, c.Labels)] = i
	}
	for _, c := range other.Counters {
		if i, ok := cidx[metricID(c.Name, c.Labels)]; ok {
			s.Counters[i].Value += c.Value
		} else {
			s.Counters = append(s.Counters, c)
		}
	}
	gidx := make(map[string]int, len(s.Gauges))
	for i, g := range s.Gauges {
		gidx[metricID(g.Name, g.Labels)] = i
	}
	for _, g := range other.Gauges {
		if i, ok := gidx[metricID(g.Name, g.Labels)]; ok {
			if g.Value > s.Gauges[i].Value {
				s.Gauges[i].Value = g.Value
			}
		} else {
			s.Gauges = append(s.Gauges, g)
		}
	}
	hidx := make(map[string]int, len(s.Histograms))
	for i, h := range s.Histograms {
		hidx[metricID(h.Name, h.Labels)] = i
	}
	for _, h := range other.Histograms {
		if i, ok := hidx[metricID(h.Name, h.Labels)]; ok {
			s.Histograms[i].Merge(h)
		} else {
			s.Histograms = append(s.Histograms, h)
		}
	}
}
