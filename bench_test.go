package hypertap_test

// One benchmark per table and figure of the paper's evaluation, plus the
// ablations DESIGN.md calls out. Each benchmark runs its experiment at a
// reduced-but-meaningful scale and reports the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` regenerates the whole evaluation's
// shape in minutes. The cmd/ tools run the same harnesses at paper scale.

import (
	"strings"
	"testing"
	"time"

	"hypertap/internal/core"
	"hypertap/internal/core/intercept"
	"hypertap/internal/experiment"
	"hypertap/internal/guest"
	"hypertap/internal/hv"
	"hypertap/internal/inject"
	"hypertap/internal/telemetry"
	"hypertap/internal/workload"
)

// BenchmarkTableI_EventMatrix verifies the guest-event → VM-Exit →
// invariant map live and reports how many of its rows were exercised.
func BenchmarkTableI_EventMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunTableI(1)
		if err != nil {
			b.Fatal(err)
		}
		exercised := 0
		for _, r := range rows {
			if r.Observed > 0 {
				exercised++
			}
		}
		b.ReportMetric(float64(exercised), "rows-verified")
		b.ReportMetric(float64(len(rows)), "rows-total")
	}
}

// BenchmarkFig4_GOSHDCoverage runs a sampled fault-injection campaign and
// reports detection coverage (paper: 99.8%) and the partial-hang share
// (paper: 18–26%).
func BenchmarkFig4_GOSHDCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunGOSHDCampaign(experiment.GOSHDConfig{
			SampleEvery: 16,
			Workloads:   []string{"make -j1", "make -j2"},
			Seed:        1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Coverage(), "coverage%")
		b.ReportMetric(100*r.PartialHangShare(), "partial%")
		b.ReportMetric(float64(r.Runs), "injections")
	}
}

// BenchmarkFig5_GOSHDLatency reports the latency CDF anchors of Fig. 5:
// first-hang detection at the 4s threshold and the full-hang lag.
func BenchmarkFig5_GOSHDLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunGOSHDCampaign(experiment.GOSHDConfig{
			SampleEvery: 16,
			Workloads:   []string{"hanoi", "http"},
			Seed:        2,
		})
		if err != nil {
			b.Fatal(err)
		}
		marks := []time.Duration{4 * time.Second, 32 * time.Second}
		first := experiment.CDF(r.AllFirstLatencies(), marks)
		full := experiment.CDF(r.AllFullLatencies(), marks)
		b.ReportMetric(100*first[0], "first-cdf@4s%")
		b.ReportMetric(100*first[1], "first-cdf@32s%")
		b.ReportMetric(100*full[0], "full-cdf@4s%")
		b.ReportMetric(100*full[1], "full-cdf@32s%")
	}
}

// BenchmarkTableII_HRKD runs the full rootkit matrix and reports the
// detection count (paper: 10/10).
func BenchmarkTableII_HRKD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunHRKDMatrix(experiment.HRKDConfig{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		detected := 0
		for _, row := range r.Rows {
			if row.Detected {
				detected++
			}
		}
		b.ReportMetric(float64(detected), "rootkits-detected")
		b.ReportMetric(float64(len(r.Rows)), "rootkits-total")
	}
}

// BenchmarkTableIII_SideChannel measures the /proc side channel at the 1s
// interval and reports the prediction error and SD in microseconds
// (paper: mean 1.00039s, SD 0.00071s).
func BenchmarkTableIII_SideChannel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunSideChannelTable(experiment.SideChannelConfig{
			Intervals: []time.Duration{time.Second}, Samples: 20, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		row := rows[0]
		errUS := float64(row.Mean-row.Nominal) / float64(time.Microsecond)
		b.ReportMetric(errUS, "mean-error-us")
		b.ReportMetric(float64(row.SD)/float64(time.Microsecond), "sd-us")
	}
}

// BenchmarkFig6_PassiveAttacks runs the attack-vs-monitor matrix and
// reports how many rows match the paper's expectations.
func BenchmarkFig6_PassiveAttacks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunPassiveAttackDemos(1)
		if err != nil {
			b.Fatal(err)
		}
		match := 0
		for _, r := range rows {
			if r.Detected == r.Expected {
				match++
			}
		}
		b.ReportMetric(float64(match), "rows-matching")
		b.ReportMetric(float64(len(rows)), "rows-total")
	}
}

// BenchmarkSec8C_NinjaShowdown measures detection probabilities for the
// three Ninjas (paper: O-Ninja ~10%→~0% under spam; H-Ninja 100% at 4ms
// falling with the interval; HT-Ninja 100%).
func BenchmarkSec8C_NinjaShowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiment.RunNinjaShowdown(experiment.ShowdownConfig{Reps: 40, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			// Metric units must be whitespace-free.
			name := strings.NewReplacer(" ", "_", "(", "", ")", "").Replace(c.Monitor + "/" + c.Param + "%")
			b.ReportMetric(100*c.Probability(), name)
		}
	}
}

// BenchmarkFig7_Overhead measures monitoring overhead on the UnixBench-class
// suite and reports the paper's headline categories.
func BenchmarkFig7_Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunPerfOverhead(experiment.PerfConfig{Scale: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		report := func(bench, metric string) {
			for _, row := range r.Rows {
				if row.Benchmark == bench {
					b.ReportMetric(100*row.Overhead("All three"), metric)
				}
			}
		}
		report("System Call Overhead", "syscall-overhead%")
		report("Pipe-based Context Switching", "ctxswitch-overhead%")
		report("File Copy 1024 bufsize", "diskio-overhead%")
		report("Dhrystone 2", "cpu-overhead%")
	}
}

// BenchmarkAblation_SeparateLogging quantifies the unified-logging claim:
// per-auditor logging stacks cost far more than HyperTap's shared channel
// on the syscall-heavy workload.
func BenchmarkAblation_SeparateLogging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunPerfOverhead(experiment.PerfConfig{
			Scale: 1, Seed: 1, IncludeAblation: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			if row.Benchmark == "System Call Overhead" {
				b.ReportMetric(100*row.Overhead("All three"), "unified%")
				b.ReportMetric(100*row.Overhead("All three (separate stacks)"), "separate%")
			}
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: virtual
// seconds per wall second for a fully monitored, busy 2-vCPU guest.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, err := hv.New(hv.Config{Guest: guest.Config{Seed: 7}})
		if err != nil {
			b.Fatal(err)
		}
		feat := intercept.Features{
			ProcessSwitch: true, ThreadSwitch: true, TSSIntegrity: true, Syscalls: true, IO: true,
		}
		if _, err := m.EnableMonitoring(feat); err != nil {
			b.Fatal(err)
		}
		if err := m.Boot(); err != nil {
			b.Fatal(err)
		}
		if _, err := workload.Launch(m, workload.MakeJ(2, 1<<20)); err != nil {
			b.Fatal(err)
		}
		const virtual = 5 * time.Second
		start := time.Now()
		m.Run(virtual)
		real := time.Since(start)
		b.ReportMetric(virtual.Seconds()/real.Seconds(), "virtual-x")
	}
}

// BenchmarkEventPublish measures the shared logging channel's raw
// throughput with three registered auditors.
func BenchmarkEventPublish(b *testing.B) {
	em := core.NewMultiplexer()
	for _, name := range []string{"a", "b", "c"} {
		aud := &core.AuditorFunc{AuditorName: name, EventMask: core.MaskAll, Fn: func(*core.Event) {}}
		if err := em.Register(aud, core.DeliverSync, 0); err != nil {
			b.Fatal(err)
		}
	}
	ev := &core.Event{Type: core.EvSyscall, SyscallNr: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i)
		em.Publish(ev)
	}
}

// BenchmarkEventPublishInstrumented is BenchmarkEventPublish with telemetry
// enabled — the pair bounds the instrumentation overhead on the hot path
// (budget: ≤10%).
func BenchmarkEventPublishInstrumented(b *testing.B) {
	em := core.NewMultiplexer()
	em.EnableTelemetry(telemetry.NewRegistry())
	for _, name := range []string{"a", "b", "c"} {
		aud := &core.AuditorFunc{AuditorName: name, EventMask: core.MaskAll, Fn: func(*core.Event) {}}
		if err := em.Register(aud, core.DeliverSync, 0); err != nil {
			b.Fatal(err)
		}
	}
	ev := &core.Event{Type: core.EvSyscall, SyscallNr: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i)
		em.Publish(ev)
	}
}

// BenchmarkEventPublishAllocs pins down the allocation story of the
// routed hot path: with the mask-indexed routing table, Publish must not
// allocate at all.
func BenchmarkEventPublishAllocs(b *testing.B) {
	em := core.NewMultiplexer()
	for _, name := range []string{"a", "b", "c"} {
		aud := &core.AuditorFunc{AuditorName: name, EventMask: core.MaskAll, Fn: func(*core.Event) {}}
		if err := em.Register(aud, core.DeliverSync, 0); err != nil {
			b.Fatal(err)
		}
	}
	ev := &core.Event{Type: core.EvSyscall, SyscallNr: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i)
		em.Publish(ev)
	}
}

// BenchmarkEventPublishTraced is BenchmarkEventPublish with the flight
// recorder armed: every publish now also writes an exit record, which
// doubles as the span's decode step. Against BenchmarkEventPublish the pair
// bounds the capture overhead (budget: ≤5%, see results/BENCH_trace.json),
// and the alloc report must stay at zero.
func BenchmarkEventPublishTraced(b *testing.B) {
	em := core.NewMultiplexer()
	em.SetFlight(core.NewFlightTable(1, 0, 0))
	for _, name := range []string{"a", "b", "c"} {
		aud := &core.AuditorFunc{AuditorName: name, EventMask: core.MaskAll, Fn: func(*core.Event) {}}
		if err := em.Register(aud, core.DeliverSync, 0); err != nil {
			b.Fatal(err)
		}
	}
	ev := &core.Event{Type: core.EvSyscall, SyscallNr: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i)
		ev.Span = core.MintSpan(0, uint64(i+1), 0)
		em.Publish(ev)
	}
}

// BenchmarkEventDispatch measures the async drain path: publish a burst
// into two ring buffers, then Dispatch it. The scratch-buffer reuse inside
// Dispatch means the steady state allocates nothing per batch.
func BenchmarkEventDispatch(b *testing.B) {
	em := core.NewMultiplexer()
	for _, name := range []string{"a", "b"} {
		aud := &core.AuditorFunc{AuditorName: name, EventMask: core.MaskAll, Fn: func(*core.Event) {}}
		if err := em.Register(aud, core.DeliverAsync, 256); err != nil {
			b.Fatal(err)
		}
	}
	ev := &core.Event{Type: core.EvSyscall, SyscallNr: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq = uint64(i)
		em.Publish(ev)
		if i%128 == 127 {
			em.Dispatch(0)
		}
	}
	em.Dispatch(0)
}

// TestDispatchSteadyStateAllocs guards the Dispatch scratch buffer: after
// warm-up, draining a burst must not allocate.
func TestDispatchSteadyStateAllocs(t *testing.T) {
	em := core.NewMultiplexer()
	aud := &core.AuditorFunc{AuditorName: "a", EventMask: core.MaskAll, Fn: func(*core.Event) {}}
	if err := em.Register(aud, core.DeliverAsync, 64); err != nil {
		t.Fatal(err)
	}
	ev := &core.Event{Type: core.EvSyscall}
	fill := func() {
		for i := 0; i < 32; i++ {
			ev.Seq = uint64(i)
			em.Publish(ev)
		}
	}
	fill()
	em.Dispatch(0) // warm-up: grows the scratch buffer to burst size
	allocs := testing.AllocsPerRun(10, func() {
		fill()
		em.Dispatch(0)
	})
	// Publish is allocation-free by construction (BenchmarkEventPublishAllocs);
	// any allocation here is Dispatch's.
	if allocs != 0 {
		t.Fatalf("steady-state Dispatch allocates %.1f times per drain, want 0", allocs)
	}
}

// BenchmarkCounterInc measures the telemetry hot path: one atomic add.
func BenchmarkCounterInc(b *testing.B) {
	c := telemetry.NewRegistry().Counter("bench_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve measures a latency record: bucket index, two
// atomic adds, and a max CAS.
func BenchmarkHistogramObserve(b *testing.B) {
	h := telemetry.NewRegistry().Histogram("bench_seconds")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%4096) * time.Microsecond)
	}
}

// BenchmarkInjectionRun measures one end-to-end fault-injection run (boot,
// workload, injection, detection, classification).
func BenchmarkInjectionRun(b *testing.B) {
	site := findBenchSite(b)
	for i := 0; i < b.N; i++ {
		rr, err := experiment.RunInjection(experiment.InjectionConfig{
			Workload:  "make -j2",
			Fault:     inject.Fault{Site: site, Persistence: inject.Persistent},
			Threshold: 4 * time.Second,
			Exposure:  15 * time.Second,
			Runway:    12 * time.Second,
			Observe:   30 * time.Second,
			Seed:      int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if rr.Outcome == inject.NotActivated {
			b.Fatal("benchmark fault never activated")
		}
	}
}

func findBenchSite(b *testing.B) guest.SiteID {
	b.Helper()
	m, err := hv.New(hv.Config{VCPUs: 1, MemBytes: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	for _, s := range m.Kernel().Sites() {
		if s.Kind == guest.FaultMissingRelease && s.Path == guest.SysWrite {
			return s.ID
		}
	}
	b.Fatal("no bench site")
	return 0
}
